//! The per-rank DSM node: age-tagged cache, update propagation, the
//! blocking `Global_Read`, and the message barrier.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use nscc_msg::{Endpoint, Envelope};
use nscc_obs::{Hub, ObsEvent, SpanKind};
use nscc_sim::{Ctx, SimTime};

use crate::directory::{Directory, LocId};

/// Wire messages exchanged by DSM nodes.
#[derive(Debug, Clone, Serialize)]
pub enum DsmMsg<T> {
    /// A new value of a shared location, stamped with the writer's
    /// iteration number ("age" in the paper's sense).
    Update {
        /// Which location.
        loc: LocId,
        /// The writer's iteration number when the value was generated.
        age: u64,
        /// The value itself.
        value: T,
    },
    /// Barrier protocol: a rank announcing it reached barrier `epoch`.
    BarrierArrive {
        /// Barrier epoch (monotonically increasing per program).
        epoch: u64,
    },
    /// Barrier protocol: the coordinator releasing barrier `epoch`.
    BarrierRelease {
        /// Barrier epoch being released.
        epoch: u64,
    },
    /// Liveness beacon for the failure detector (see
    /// [`DsmWorld::spawn_heartbeats`](crate::DsmWorld::spawn_heartbeats)).
    /// Carries no data; receipt refreshes the sender's last-heard stamp.
    Heartbeat,
}

/// Per-node DSM counters, readable after a run via
/// [`DsmWorld::stats`](crate::DsmWorld::stats).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct DsmStats {
    /// `write` calls performed.
    pub writes: u64,
    /// Update messages pushed to readers.
    pub updates_sent: u64,
    /// Update messages applied to the cache.
    pub updates_applied: u64,
    /// Updates discarded because a newer value was already cached.
    pub updates_stale: u64,
    /// Reads satisfied immediately from the cache.
    pub cache_hits: u64,
    /// Reads that had to block for a fresher value.
    pub blocked_reads: u64,
    /// Total virtual time spent blocked in `Global_Read`.
    pub block_time: SimTime,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Total virtual time spent waiting at barriers.
    pub barrier_time: SimTime,
    /// `Global_Read`s that timed out and returned a stale cached value
    /// instead of enforcing their staleness bound.
    pub degraded_reads: u64,
    /// Peers this node's failure detector declared dead.
    pub suspected_writers: u64,
    /// Barrier waits abandoned by the failure detector.
    pub barrier_timeouts: u64,
}

impl nscc_ckpt::Snapshot for DsmStats {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u64(self.writes);
        enc.put_u64(self.updates_sent);
        enc.put_u64(self.updates_applied);
        enc.put_u64(self.updates_stale);
        enc.put_u64(self.cache_hits);
        enc.put_u64(self.blocked_reads);
        self.block_time.encode(enc);
        enc.put_u64(self.barriers);
        self.barrier_time.encode(enc);
        enc.put_u64(self.degraded_reads);
        enc.put_u64(self.suspected_writers);
        enc.put_u64(self.barrier_timeouts);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(DsmStats {
            writes: dec.u64()?,
            updates_sent: dec.u64()?,
            updates_applied: dec.u64()?,
            updates_stale: dec.u64()?,
            cache_hits: dec.u64()?,
            blocked_reads: dec.u64()?,
            block_time: nscc_ckpt::Snapshot::decode(dec)?,
            barriers: dec.u64()?,
            barrier_time: nscc_ckpt::Snapshot::decode(dec)?,
            degraded_reads: dec.u64()?,
            suspected_writers: dec.u64()?,
            barrier_timeouts: dec.u64()?,
        })
    }
}

impl DsmStats {
    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &DsmStats) {
        self.writes += other.writes;
        self.updates_sent += other.updates_sent;
        self.updates_applied += other.updates_applied;
        self.updates_stale += other.updates_stale;
        self.cache_hits += other.cache_hits;
        self.blocked_reads += other.blocked_reads;
        self.block_time += other.block_time;
        self.barriers += other.barriers;
        self.barrier_time += other.barrier_time;
        self.degraded_reads += other.degraded_reads;
        self.suspected_writers += other.suspected_writers;
        self.barrier_timeouts += other.barrier_timeouts;
    }
}

/// The age stamped on a writer's final "retirement" update: it satisfies
/// any staleness requirement, letting still-blocked readers observe that
/// the writer has left the computation (see
/// [`DsmNode::retire`]).
pub const RETIRE_AGE: u64 = u64::MAX;

/// Outcome of an exact-version wait: the writer retired before (or
/// instead of) publishing the requested version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired;

/// Everything a `Global_Read` can report (see
/// [`DsmNode::global_read_ex`]): the value, its generation age, and the
/// blocking behaviour an adaptive staleness controller feeds on.
#[derive(Debug, Clone)]
pub struct ReadOutcome<T> {
    /// Iteration in which the returned value was generated.
    pub age: u64,
    /// The value.
    pub value: T,
    /// Whether the read had to block.
    pub blocked: bool,
    /// How long it blocked (zero when served from cache).
    pub block_time: SimTime,
    /// The requirement the read enforced (`curr_iter − age`, saturated).
    pub required: u64,
    /// Whether the staleness bound was *violated*: the read timed out
    /// (see [`DsmWorld::with_read_timeout`](crate::DsmWorld::with_read_timeout))
    /// and returned the freshest cached value instead of blocking further.
    pub degraded: bool,
}

impl<T> ReadOutcome<T> {
    /// How much fresher than required the value was (the controller's
    /// "slack" signal), clamped to a sane range even for retirement
    /// sentinels.
    pub fn slack(&self) -> u64 {
        self.age.saturating_sub(self.required).min(1_000_000)
    }
}

/// One rank's DSM state. Move it into the rank's process closure; it is not
/// shared (each node has exactly one owner process).
pub struct DsmNode<T: Send + 'static> {
    rank: usize,
    ep: Endpoint<DsmMsg<T>>,
    dir: Arc<Directory>,
    cache: HashMap<LocId, (u64, T)>,
    /// Per-location window of recent versions (only when `history > 0`).
    versions: HashMap<LocId, std::collections::VecDeque<(u64, T)>>,
    /// How many past versions to retain per location.
    history: usize,
    /// Applied-update log (history mode only): rollback consumers drain it
    /// with [`take_update_log`](DsmNode::take_update_log) to learn which
    /// `(loc, age)` pairs changed since they last looked.
    update_log: Vec<(LocId, u64)>,
    /// Write coalescing (Mermera-style, §2.1): propagate only every k-th
    /// write per location (1 = every write). The local copy is always
    /// current; peers see the latest value at a coarser cadence.
    coalesce: u64,
    /// Writes since the last propagation, per location.
    pending_writes: HashMap<LocId, u64>,
    /// Highest barrier epoch released (observed from the coordinator).
    released: u64,
    /// Coordinator only: which ranks have arrived, per epoch.
    arrivals: HashMap<u64, HashSet<usize>>,
    /// Give up on blocked reads / barrier waits after this long without
    /// progress (`None` = wait forever, the paper's semantics).
    timeout: Option<SimTime>,
    /// Deliberate-sabotage budget: this many would-block `Global_Read`s
    /// are released immediately with the stale cached value, violating
    /// the age bound on purpose so the audit pipeline can be validated
    /// end-to-end (see `DsmWorld::with_stale_injection`). 0 = off.
    inject_stale: u64,
    /// Failure detector: when each peer was last heard from (send-time
    /// stamps of arriving messages, heartbeats included).
    last_heard: HashMap<usize, SimTime>,
    /// Peers declared dead by the failure detector.
    suspected: HashSet<usize>,
    /// Active consistent-snapshot recording (Chandy–Lamport), if any:
    /// updates arriving on still-open incoming channels are copied into
    /// the cut's channel state as they are applied. `None` costs one
    /// branch per applied update.
    snap: Option<SnapRec<T>>,
    stats: DsmStats,
    shared_stats: Arc<Mutex<Vec<DsmStats>>>,
    obs: Option<Hub>,
}

/// In-progress marker-protocol recording for one cut (see
/// [`DsmNode::snap_begin`]). The node keeps serving reads and writes
/// throughout — recording is a copy on the apply path, never a pause.
struct SnapRec<T> {
    id: u64,
    /// Incoming channels whose closing marker has not arrived yet.
    open: HashSet<usize>,
    /// Updates recorded from open channels, in arrival order.
    recorded: Vec<(LocId, u64, T)>,
}

impl<T: Clone + Serialize + Send + 'static> DsmNode<T> {
    pub(crate) fn new(
        rank: usize,
        ep: Endpoint<DsmMsg<T>>,
        dir: Arc<Directory>,
        initial: HashMap<LocId, (u64, T)>,
        history: usize,
        shared_stats: Arc<Mutex<Vec<DsmStats>>>,
        obs: Option<Hub>,
    ) -> Self {
        // (coalesce is configured post-construction by the world)
        DsmNode {
            rank,
            ep,
            dir,
            cache: initial,
            versions: HashMap::new(),
            history,
            update_log: Vec::new(),
            coalesce: 1,
            pending_writes: HashMap::new(),
            released: 0,
            arrivals: HashMap::new(),
            timeout: None,
            inject_stale: 0,
            last_heard: HashMap::new(),
            suspected: HashSet::new(),
            snap: None,
            stats: DsmStats::default(),
            shared_stats,
            obs,
        }
    }

    /// This node's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn ranks(&self) -> usize {
        self.ep.ranks()
    }

    /// Whether this rank is a registered reader of `loc` (sparse
    /// migration topologies make islands read only their neighbours).
    pub fn is_reader(&self, loc: LocId) -> bool {
        self.dir.meta(loc).readers.contains(&self.rank)
    }

    /// Write a new value of `loc`, generated in the writer's iteration
    /// `iter`. Updates the local copy and pushes the value to every
    /// registered reader (direct sends, §4.1 of the paper). Under write
    /// coalescing ([`set_coalescing`](DsmNode::set_coalescing)) only
    /// every k-th write per location is propagated — the DSM-level
    /// amortization the paper credits to Mermera (§2.1): multiple updates
    /// of one location collapse into a single message carrying the
    /// latest value.
    pub fn write(&mut self, ctx: &mut Ctx, loc: LocId, value: T, iter: u64) {
        let meta = self.dir.meta(loc);
        assert_eq!(
            meta.writer, self.rank,
            "rank {} writing location `{}` owned by rank {}",
            self.rank, meta.name, meta.writer
        );
        self.stats.writes += 1;
        if let Some(hub) = &self.obs {
            hub.emit(ObsEvent::Write {
                t_ns: ctx.now().as_nanos(),
                rank: self.rank as u32,
                loc: loc.0,
                age: iter,
            });
        }
        let pending = self.pending_writes.entry(loc).or_insert(0);
        *pending += 1;
        // Retirement sentinels always flush (termination must propagate).
        let due = *pending >= self.coalesce || iter == RETIRE_AGE;
        if due {
            *pending = 0;
            let readers = meta.readers.clone();
            if !readers.is_empty() {
                self.stats.updates_sent += readers.len() as u64;
                // One pack, one wire frame on broadcast media (pvm_mcast).
                // Tagged with (writer, loc, iter) provenance so blocked
                // readers can attribute their release; the stamp only
                // exists when a hub is attached.
                self.ep.multicast_tagged(
                    ctx,
                    &readers,
                    DsmMsg::Update {
                        loc,
                        age: iter,
                        value: value.clone(),
                    },
                    loc.0,
                    iter,
                );
            }
        }
        self.cache.insert(loc, (iter, value));
        self.flush_stats();
    }

    /// Enable write coalescing: propagate only every `k`-th write per
    /// location (`k = 1` restores write-through). The local copy is
    /// always current; remote readers trade staleness for ~k× fewer
    /// messages — which is why coalescing composes naturally with
    /// `Global_Read`'s staleness bound.
    pub fn set_coalescing(&mut self, k: u64) {
        assert!(k >= 1, "coalescing factor must be at least 1");
        self.coalesce = k;
    }

    /// Bound how long blocked reads and barrier waits may stall without
    /// progress before degrading (see
    /// [`DsmWorld::with_read_timeout`](crate::DsmWorld::with_read_timeout)).
    pub fn set_timeout(&mut self, timeout: SimTime) {
        self.timeout = Some(timeout);
    }

    /// Arm the deliberate-sabotage budget: the next `n` would-block
    /// `Global_Read`s return their stale cached value immediately instead
    /// of waiting, emitting a `ReadDone` whose staleness exceeds the
    /// requested bound. Exists solely to validate that the audit layer
    /// catches real bound violations; never enabled by default.
    pub fn set_stale_injection(&mut self, n: u64) {
        self.inject_stale = n;
    }

    /// Peers this node's failure detector has declared dead so far.
    pub fn suspected(&self) -> &HashSet<usize> {
        &self.suspected
    }

    /// Mark every peer that has been silent for longer than `window` as
    /// suspected, emitting one [`WriterSuspected`](ObsEvent::WriterSuspected)
    /// per new suspect. Peers in `exempt` have already proven themselves
    /// (e.g. by arriving at the barrier being waited on) and are skipped —
    /// a rank blocked waiting alongside us is silent but not dead.
    /// Returns how many peers were newly suspected.
    fn suspect_silent_peers(
        &mut self,
        ctx: &Ctx,
        window: SimTime,
        exempt: &HashSet<usize>,
    ) -> usize {
        let now = ctx.now();
        let mut newly = 0;
        for peer in 0..self.ep.ranks() {
            if peer == self.rank || self.suspected.contains(&peer) || exempt.contains(&peer) {
                continue;
            }
            let heard = self.last_heard.get(&peer).copied().unwrap_or(SimTime::ZERO);
            if now.saturating_sub(heard) > window {
                self.suspected.insert(peer);
                self.stats.suspected_writers += 1;
                newly += 1;
                if let Some(hub) = &self.obs {
                    hub.emit(ObsEvent::WriterSuspected {
                        t_ns: now.as_nanos(),
                        rank: self.rank as u32,
                        peer: peer as u32,
                    });
                }
            }
        }
        newly
    }

    /// The paper's `Global_Read(locn, curr_iter, age)`: return the cached
    /// value if it was generated no earlier than iteration
    /// `curr_iter − age` of the writer, else block until such a value
    /// arrives. Returns `(generation_age, value)`.
    pub fn global_read(&mut self, ctx: &mut Ctx, loc: LocId, curr_iter: u64, age: u64) -> (u64, T) {
        let out = self.global_read_ex(ctx, loc, curr_iter, age);
        (out.age, out.value)
    }

    /// [`global_read`](DsmNode::global_read) with the observability an
    /// adaptive controller ([`AgeController`](crate::AgeController))
    /// needs: whether the read blocked, and for how long.
    pub fn global_read_ex(
        &mut self,
        ctx: &mut Ctx,
        loc: LocId,
        curr_iter: u64,
        age: u64,
    ) -> ReadOutcome<T> {
        let required = curr_iter.saturating_sub(age);
        self.drain(ctx);
        if let Some((have, v)) = self.cache.get(&loc) {
            if *have >= required {
                self.stats.cache_hits += 1;
                if let Some(hub) = &self.obs {
                    hub.emit(read_done_event(
                        ctx.now(),
                        self.rank,
                        loc,
                        curr_iter,
                        age,
                        *have,
                        false,
                        SimTime::ZERO,
                    ));
                }
                self.flush_stats();
                return ReadOutcome {
                    age: *have,
                    value: v.clone(),
                    blocked: false,
                    block_time: SimTime::ZERO,
                    required,
                    degraded: false,
                };
            }
        }
        // Deliberate sabotage (audit validation only): spend one budget
        // unit to release this would-block read with the stale cached
        // value. The emitted ReadDone carries the true excess staleness,
        // which the audit staleness monitor must flag.
        if self.inject_stale > 0 {
            if let Some((have, v)) = self.cache.get(&loc) {
                self.inject_stale -= 1;
                if let Some(hub) = &self.obs {
                    if hub.staleness_enabled() {
                        // A sabotaged release gets a deliberately empty
                        // decomposition: no stage accounts for the excess
                        // age, so the conservation monitor must flag it
                        // just as the staleness monitor flags the bound
                        // violation the ReadDone below carries.
                        hub.emit(ObsEvent::ReadAnatomy {
                            t_ns: ctx.now().as_nanos(),
                            reader: self.rank as u32,
                            writer: self.rank as u32,
                            loc: loc.0,
                            write_iter: *have,
                            msg_seq: 0,
                            age_ns: required.saturating_sub(*have).max(1),
                            wait_ns: 0,
                            publish_ns: 0,
                            transit_ns: 0,
                            fault_ns: 0,
                            retrans_ns: 0,
                            queue_ns: 0,
                            apply_ns: 0,
                        });
                    }
                    hub.emit(read_done_event(
                        ctx.now(),
                        self.rank,
                        loc,
                        curr_iter,
                        age,
                        *have,
                        false,
                        SimTime::ZERO,
                    ));
                }
                self.flush_stats();
                return ReadOutcome {
                    age: *have,
                    value: v.clone(),
                    blocked: false,
                    block_time: SimTime::ZERO,
                    required,
                    degraded: false,
                };
            }
        }
        // Blocked path: wait for updates, applying everything that arrives.
        self.stats.blocked_reads += 1;
        let t0 = ctx.now();
        if let Some(hub) = &self.obs {
            hub.emit(ObsEvent::ReadBlocked {
                t_ns: t0.as_nanos(),
                rank: self.rank as u32,
                loc: loc.0,
                required,
            });
            // Tell the profiler what this process is blocked *on*: samples
            // taken during the wait fold under `Global_Read;<locn>`.
            hub.annotate_phase(
                self.rank as u32,
                "Global_Read",
                self.dir.meta(loc).name.clone(),
            );
        }
        // Provenance of the last arriving update that satisfies this read:
        // `(received_at, sent_at, stamp)`. Whichever such update was
        // applied most recently is the one whose arrival released us.
        let mut dep: Option<(SimTime, SimTime, nscc_msg::Provenance)> = None;
        let mut deadline = self.timeout.map(|to| t0 + to);
        loop {
            let env = match deadline {
                None => self.ep.recv(ctx),
                Some(dl) => match self.ep.recv_deadline(ctx, dl) {
                    Some(env) => env,
                    None => {
                        // Timed out. If anything is cached, violate the
                        // staleness bound rather than the liveness of the
                        // whole computation; otherwise keep waiting with a
                        // fresh deadline (there is nothing to degrade to).
                        if let Some((have, v)) = self.cache.get(&loc) {
                            let block_time = ctx.now() - t0;
                            self.stats.block_time += block_time;
                            self.stats.degraded_reads += 1;
                            if let Some(hub) = &self.obs {
                                hub.emit(ObsEvent::ReadDegraded {
                                    t_ns: ctx.now().as_nanos(),
                                    rank: self.rank as u32,
                                    loc: loc.0,
                                    required,
                                    delivered: *have,
                                });
                                hub.clear_phase(self.rank as u32);
                            }
                            self.flush_stats();
                            return ReadOutcome {
                                age: *have,
                                value: v.clone(),
                                blocked: true,
                                block_time,
                                required,
                                degraded: true,
                            };
                        }
                        deadline = self.timeout.map(|to| ctx.now() + to);
                        continue;
                    }
                },
            };
            if self.obs.is_some() {
                if let (Some(p), DsmMsg::Update { loc: l, age: a, .. }) = (env.prov, &env.payload) {
                    if *l == loc && *a >= required {
                        dep = Some((ctx.now(), env.sent_at, p));
                    }
                }
            }
            self.apply(env);
            if let Some((have, v)) = self.cache.get(&loc) {
                if *have >= required {
                    let block_time = ctx.now() - t0;
                    self.stats.block_time += block_time;
                    let out = ReadOutcome {
                        age: *have,
                        value: v.clone(),
                        blocked: true,
                        block_time,
                        required,
                        degraded: false,
                    };
                    if let Some(hub) = &self.obs {
                        // Staleness anatomy: decompose this release's
                        // observed age into named hop stages from the
                        // releasing update's virtual-time stamps. Each
                        // stage is a difference of adjacent stamps, so
                        // the seven stages telescope to exactly
                        // `t_rel - min(t0, write_ns)` — the conservation
                        // contract the audit monitor asserts online.
                        if hub.staleness_enabled() {
                            if let Some((_, sent_at, p)) = dep {
                                let t_rel = ctx.now().as_nanos();
                                let t0_ns = t0.as_nanos();
                                let s = sent_at.as_nanos();
                                hub.emit(ObsEvent::ReadAnatomy {
                                    t_ns: t_rel,
                                    reader: self.rank as u32,
                                    writer: p.writer,
                                    loc: loc.0,
                                    write_iter: p.write_iter,
                                    msg_seq: p.msg_seq,
                                    age_ns: t_rel - t0_ns.min(p.write_ns),
                                    wait_ns: p.write_ns.saturating_sub(t0_ns),
                                    publish_ns: s.saturating_sub(p.write_ns),
                                    transit_ns: p
                                        .arrive_ns
                                        .saturating_sub(s)
                                        .saturating_sub(p.retrans_ns)
                                        .saturating_sub(p.fault_ns),
                                    fault_ns: p.fault_ns,
                                    retrans_ns: p.retrans_ns,
                                    queue_ns: p.recv_ns.saturating_sub(p.arrive_ns),
                                    apply_ns: t_rel.saturating_sub(p.recv_ns),
                                });
                            }
                        }
                        hub.emit(read_done_event(
                            ctx.now(),
                            self.rank,
                            loc,
                            curr_iter,
                            age,
                            out.age,
                            true,
                            block_time,
                        ));
                        // Blocked waits live on the Phase lane (pid = rank),
                        // which the scheduler's own Blocked spans never use.
                        hub.span(
                            self.rank as u32,
                            t0.as_nanos(),
                            ctx.now().as_nanos(),
                            SpanKind::Phase,
                            format!("Global_Read:{}", self.dir.meta(loc).name),
                        );
                        // Causal attribution: which write released us, and
                        // where its latency went. In-flight time is the
                        // delivery latency minus what queueing and the
                        // retransmit protocol already account for.
                        if let Some((recv_at, sent_at, p)) = dep {
                            let total = recv_at.saturating_sub(sent_at).as_nanos();
                            hub.emit(ObsEvent::ReadDep {
                                t_ns: ctx.now().as_nanos(),
                                reader: self.rank as u32,
                                writer: p.writer,
                                loc: loc.0,
                                write_iter: p.write_iter,
                                msg_seq: p.msg_seq,
                                block_ns: block_time.as_nanos(),
                                queued_ns: p.queued_ns,
                                inflight_ns: total
                                    .saturating_sub(p.queued_ns)
                                    .saturating_sub(p.retrans_ns),
                                retrans_ns: p.retrans_ns,
                            });
                        }
                        hub.clear_phase(self.rank as u32);
                    }
                    self.flush_stats();
                    return out;
                }
            }
        }
    }

    /// Fully asynchronous read: drain pending updates and return whatever
    /// the cache holds, never blocking. Panics if the location was never
    /// initialized (give every readable location an initial value).
    pub fn read_relaxed(&mut self, ctx: &mut Ctx, loc: LocId) -> (u64, T) {
        self.drain(ctx);
        let (have, v) = self
            .cache
            .get(&loc)
            .unwrap_or_else(|| panic!("location `{}` has no value", self.dir.meta(loc).name));
        self.stats.cache_hits += 1;
        let out = (*have, v.clone());
        self.flush_stats();
        out
    }

    /// Read under a [`Coherence`](crate::Coherence) discipline.
    pub fn read(
        &mut self,
        ctx: &mut Ctx,
        loc: LocId,
        curr_iter: u64,
        mode: crate::Coherence,
    ) -> (u64, T) {
        match mode {
            crate::Coherence::FullyAsync => {
                let (have, v) = self.read_relaxed(ctx, loc);
                if let Some(hub) = &self.obs {
                    hub.emit(read_done_event(
                        ctx.now(),
                        self.rank,
                        loc,
                        curr_iter,
                        u64::MAX,
                        have,
                        false,
                        SimTime::ZERO,
                    ));
                }
                (have, v)
            }
            // The (curr_iter, age) pair passes through unchanged —
            // blocking-wise identical to waiting for
            // `mode.required_age(curr_iter)`, but the emitted `ReadDone`
            // carries the true requested age and delivered staleness.
            crate::Coherence::Synchronous => self.global_read(ctx, loc, curr_iter, 0),
            crate::Coherence::PartialAsync { age } => self.global_read(ctx, loc, curr_iter, age),
        }
    }

    /// Publish a final "infinitely fresh" update of `loc` so readers still
    /// blocked on this writer unblock and can observe termination
    /// ([`RETIRE_AGE`]). Call once per owned location when leaving the
    /// computation under a barrier-free discipline.
    pub fn retire(&mut self, ctx: &mut Ctx, loc: LocId, value: T) {
        self.write(ctx, loc, value, RETIRE_AGE);
    }

    /// The exact version of `loc` generated at iteration `age`, if it is
    /// in the retained window (requires a world built
    /// [`with_history`](crate::DsmWorld::with_history)). Non-blocking and
    /// local; drains nothing.
    pub fn get_version(&self, loc: LocId, age: u64) -> Option<&T> {
        if let Some(w) = self.versions.get(&loc) {
            if let Some((_, v)) = w.iter().find(|(a, _)| *a == age) {
                return Some(v);
            }
        }
        match self.cache.get(&loc) {
            Some((a, v)) if *a == age => Some(v),
            _ => None,
        }
    }

    /// Block until the exact version of `loc` for iteration `age` arrives,
    /// returning it — or [`Retired`] if the writer published its
    /// retirement sentinel instead. Used by the synchronous logic-sampling
    /// discipline, which needs per-iteration values.
    pub fn wait_version(&mut self, ctx: &mut Ctx, loc: LocId, age: u64) -> Result<T, Retired> {
        self.drain(ctx);
        let entry = ctx.now();
        let mut waited = false;
        loop {
            let hit = self.get_version(loc, age).cloned();
            if let Some(out) = hit {
                self.stats.cache_hits += 1;
                self.record_wait_span(ctx, loc, entry, waited);
                self.flush_stats();
                return Ok(out);
            }
            match self.cache.get(&loc) {
                Some((a, _)) if *a == RETIRE_AGE => {
                    self.record_wait_span(ctx, loc, entry, waited);
                    self.flush_stats();
                    return Err(Retired);
                }
                Some((a, _)) if *a > age => panic!(
                    "version {age} of `{}` was evicted (latest {a}, window {}); \
                     increase DsmWorld::with_history",
                    self.dir.meta(loc).name,
                    self.history
                ),
                _ => {}
            }
            self.stats.blocked_reads += 1;
            waited = true;
            let t0 = ctx.now();
            let env = self.ep.recv(ctx);
            self.apply(env);
            self.stats.block_time += ctx.now() - t0;
        }
    }

    /// Record the Phase-lane span covering a blocked
    /// [`wait_version`](DsmNode::wait_version) episode (no-op for
    /// immediate hits or when detached).
    fn record_wait_span(&self, ctx: &Ctx, loc: LocId, entry: SimTime, waited: bool) {
        if !waited {
            return;
        }
        if let Some(hub) = &self.obs {
            hub.span(
                self.rank as u32,
                entry.as_nanos(),
                ctx.now().as_nanos(),
                SpanKind::Phase,
                format!("wait_version:{}", self.dir.meta(loc).name),
            );
        }
    }

    /// Apply all pending updates without blocking.
    pub fn drain(&mut self, ctx: &mut Ctx) {
        while let Some(env) = self.ep.try_recv(ctx) {
            self.apply(env);
        }
    }

    /// The age of the cached copy of `loc`, if any.
    pub fn cached_age(&self, loc: LocId) -> Option<u64> {
        self.cache.get(&loc).map(|(a, _)| *a)
    }

    /// Message-based barrier: rank 0 coordinates; everyone else announces
    /// arrival and waits for the release. Updates arriving during the wait
    /// are applied (they are not lost). `epoch` must increase by 1 per
    /// barrier, starting at 1.
    pub fn barrier(&mut self, ctx: &mut Ctx, epoch: u64) {
        let p = self.ep.ranks();
        self.stats.barriers += 1;
        let t0 = ctx.now();
        if let Some(hub) = &self.obs {
            hub.emit(ObsEvent::BarrierEnter {
                t_ns: t0.as_nanos(),
                rank: self.rank as u32,
                epoch,
            });
        }
        if p == 1 {
            self.finish_barrier(ctx, epoch, t0);
            return;
        }
        if self.rank == 0 {
            // Wait until every peer has arrived or been declared dead:
            // a barrier must not wait forever on a crashed node.
            loop {
                let arrived = self.arrivals.entry(epoch).or_default().clone();
                let waiting = (1..p)
                    .filter(|q| !arrived.contains(q) && !self.suspected.contains(q))
                    .count();
                if waiting == 0 {
                    break;
                }
                match self.barrier_recv(ctx) {
                    Some(env) => self.apply(env),
                    None => {
                        // Silence exceeded the window: declare unheard
                        // peers dead. Already-arrived peers are exempt —
                        // they are silent because they are waiting on us.
                        if self.suspect_silent_peers(ctx, self.timeout.unwrap(), &arrived) > 0 {
                            self.stats.barrier_timeouts += 1;
                        }
                    }
                }
            }
            self.arrivals.remove(&epoch);
            self.ep.broadcast(ctx, DsmMsg::BarrierRelease { epoch });
        } else {
            self.ep.send(ctx, 0, DsmMsg::BarrierArrive { epoch });
            while self.released < epoch {
                match self.barrier_recv(ctx) {
                    Some(env) => self.apply(env),
                    None => {
                        // A dead coordinator can never release us; exit
                        // the barrier degraded rather than deadlock.
                        self.suspect_silent_peers(ctx, self.timeout.unwrap(), &HashSet::new());
                        if self.suspected.contains(&0) {
                            self.stats.barrier_timeouts += 1;
                            break;
                        }
                    }
                }
            }
        }
        self.finish_barrier(ctx, epoch, t0);
    }

    /// One barrier-wait receive: blocking forever without a timeout,
    /// otherwise bounded by one silence window (`None` = window expired).
    fn barrier_recv(&mut self, ctx: &mut Ctx) -> Option<Envelope<DsmMsg<T>>> {
        match self.timeout {
            None => Some(self.ep.recv(ctx)),
            Some(to) => {
                let deadline = ctx.now() + to;
                self.ep.recv_deadline(ctx, deadline)
            }
        }
    }

    /// Common barrier epilogue: account the wait, emit the release event
    /// and its Phase-lane span, and publish the counters.
    fn finish_barrier(&mut self, ctx: &mut Ctx, epoch: u64, t0: SimTime) {
        let wait = ctx.now() - t0;
        self.stats.barrier_time += wait;
        if let Some(hub) = &self.obs {
            hub.emit(ObsEvent::BarrierExit {
                t_ns: ctx.now().as_nanos(),
                rank: self.rank as u32,
                epoch,
                wait_ns: wait.as_nanos(),
            });
            if wait > SimTime::ZERO {
                hub.span(
                    self.rank as u32,
                    t0.as_nanos(),
                    ctx.now().as_nanos(),
                    SpanKind::Phase,
                    "barrier",
                );
            }
        }
        self.flush_stats();
    }

    /// Start recording for consistent cut `id` (local state was just
    /// captured by the caller): every incoming channel is open except the
    /// one the first marker arrived on (`closed`, `None` on the
    /// initiator). Updates applied from open channels are copied into the
    /// cut's channel state until [`snap_close`](DsmNode::snap_close)
    /// closes them. A previous unfinished recording is discarded — a
    /// newer marker wave preempts a cut stalled by a dead peer.
    pub fn snap_begin(&mut self, id: u64, closed: Option<usize>) {
        let mut open: HashSet<usize> = (0..self.ep.ranks()).filter(|&q| q != self.rank).collect();
        if let Some(c) = closed {
            open.remove(&c);
        }
        self.snap = Some(SnapRec {
            id,
            open,
            recorded: Vec::new(),
        });
    }

    /// The cut id currently being recorded, if any.
    pub fn snap_active(&self) -> Option<u64> {
        self.snap.as_ref().map(|s| s.id)
    }

    /// A marker from `src` arrived: stop recording that channel.
    pub fn snap_close(&mut self, src: usize) {
        if let Some(s) = &mut self.snap {
            s.open.remove(&src);
        }
    }

    /// Incoming channels still awaiting their closing marker (0 = the
    /// local part of the cut is complete).
    pub fn snap_open(&self) -> usize {
        self.snap.as_ref().map_or(0, |s| s.open.len())
    }

    /// In-flight updates recorded so far for the active cut (deadlock
    /// breadcrumbs: a large depth with channels still open points at the
    /// writer whose marker never arrived).
    pub fn snap_recorded(&self) -> usize {
        self.snap.as_ref().map_or(0, |s| s.recorded.len())
    }

    /// Finish (or abandon) the recording, returning the in-flight updates
    /// captured from then-open channels, in arrival order.
    pub fn snap_finish(&mut self) -> Vec<(LocId, u64, T)> {
        self.snap.take().map(|s| s.recorded).unwrap_or_default()
    }

    /// Drain the applied-update log (history mode): every `(loc, age)`
    /// whose value was applied (or corrected) since the previous call.
    pub fn take_update_log(&mut self) -> Vec<(LocId, u64)> {
        std::mem::take(&mut self.update_log)
    }

    /// The attached observability hub, if any (recovery layers emit their
    /// checkpoint/restore events through the node's own hub).
    pub fn hub(&self) -> Option<&Hub> {
        self.obs.as_ref()
    }

    /// Export the age-tagged cache, sorted by location for deterministic
    /// encoding: the DSM half of a node checkpoint.
    pub fn export_cache(&self) -> Vec<(LocId, u64, T)> {
        let mut entries: Vec<(LocId, u64, T)> = self
            .cache
            .iter()
            .map(|(loc, (age, v))| (*loc, *age, v.clone()))
            .collect();
        entries.sort_by_key(|(loc, _, _)| loc.0);
        entries
    }

    /// Restore cache entries from a checkpoint, replacing whatever is
    /// cached for those locations. In history mode the restored values
    /// also enter the version window, so exact-version readers stay
    /// consistent. Pending (undelivered) updates are untouched: draining
    /// them afterwards resyncs the node from its writers, which is exactly
    /// how a legitimately stale peer catches up — the paper's age bound
    /// makes recovery indistinguishable from staleness.
    pub fn restore_cache(&mut self, entries: Vec<(LocId, u64, T)>) {
        for (loc, age, value) in entries {
            if self.history > 0 {
                let w = self.versions.entry(loc).or_default();
                if let Some(slot) = w.iter_mut().find(|(a, _)| *a == age) {
                    slot.1 = value.clone();
                } else {
                    w.push_back((age, value.clone()));
                    while w.len() > self.history {
                        w.pop_front();
                    }
                }
            }
            self.cache.insert(loc, (age, value));
        }
    }

    /// This node's counters so far.
    pub fn stats(&self) -> DsmStats {
        self.stats
    }

    fn apply(&mut self, env: Envelope<DsmMsg<T>>) {
        // Events emitted here are stamped with the update's send time: the
        // receive handler has no clock of its own.
        let sent_at = env.sent_at;
        // Any message is proof of life at its send time (the failure
        // detector compares against send-time stamps throughout).
        let heard = self.last_heard.entry(env.src).or_insert(SimTime::ZERO);
        *heard = (*heard).max(sent_at);
        match env.payload {
            DsmMsg::Update { loc, age, value } => {
                // Marker-protocol channel recording: a cut in progress
                // copies updates from still-open channels into its channel
                // state. The update is *also* applied normally below — the
                // node never stops serving for a snapshot.
                if let Some(s) = &mut self.snap {
                    if s.open.contains(&env.src) {
                        s.recorded.push((loc, age, value.clone()));
                    }
                }
                if self.history > 0 {
                    // Versioned mode: retain a window of recent versions.
                    // An update re-using an existing age is a *correction*
                    // (rollback protocols re-publish amended values) and
                    // replaces that version in place.
                    self.update_log.push((loc, age));
                    let w = self.versions.entry(loc).or_default();
                    if let Some(slot) = w.iter_mut().find(|(a, _)| *a == age) {
                        slot.1 = value.clone();
                    } else {
                        w.push_back((age, value.clone()));
                        while w.len() > self.history {
                            w.pop_front();
                        }
                    }
                    self.stats.updates_applied += 1;
                    match self.cache.get(&loc) {
                        Some((have, _)) if *have > age => {}
                        _ => {
                            self.cache.insert(loc, (age, value));
                        }
                    }
                    self.flush_stats();
                    return;
                }
                match self.cache.get(&loc) {
                    Some((have, _)) if *have > age => {
                        // FIFO channels make this rare, but guard anyway:
                        // never replace a newer value with an older one.
                        self.stats.updates_stale += 1;
                        if let Some(hub) = &self.obs {
                            hub.emit(ObsEvent::StaleDiscard {
                                t_ns: sent_at.as_nanos(),
                                rank: self.rank as u32,
                                loc: loc.0,
                                age,
                                have: *have,
                            });
                        }
                    }
                    _ => {
                        self.cache.insert(loc, (age, value));
                        self.stats.updates_applied += 1;
                    }
                }
            }
            DsmMsg::BarrierArrive { epoch } => {
                debug_assert_eq!(self.rank, 0, "only rank 0 coordinates barriers");
                self.arrivals.entry(epoch).or_default().insert(env.src);
            }
            DsmMsg::BarrierRelease { epoch } => {
                self.released = self.released.max(epoch);
            }
            // Proof of life only; handled above for every message kind.
            DsmMsg::Heartbeat => {}
        }
    }

    fn flush_stats(&self) {
        self.shared_stats.lock()[self.rank] = self.stats;
    }
}

/// Build the `ReadDone` event shared by every read flavour. `requested` is
/// the raw `age` argument (`u64::MAX` for relaxed reads); the recorded
/// staleness is `curr_iter − delivered`, saturated so future or retired
/// values count as perfectly fresh.
#[allow(clippy::too_many_arguments)]
fn read_done_event(
    now: SimTime,
    rank: usize,
    loc: LocId,
    curr_iter: u64,
    requested: u64,
    delivered: u64,
    blocked: bool,
    block_time: SimTime,
) -> ObsEvent {
    ObsEvent::ReadDone {
        t_ns: now.as_nanos(),
        rank: rank as u32,
        loc: loc.0,
        curr_iter,
        requested,
        delivered,
        staleness: curr_iter.saturating_sub(delivered),
        blocked,
        block_ns: block_time.as_nanos(),
    }
}
