//! Consistent-snapshot coordination: the [`SnapshotBoard`] collecting
//! per-rank [`CutFrame`]s into complete [`GlobalCut`]s, and the
//! [`SnapConfig`] bundle an application thread needs to participate in
//! the marker protocol.
//!
//! The protocol itself is deliberately split across layers: markers
//! travel on [`nscc_msg::MarkerPlane`]'s zero-cost side channel,
//! per-channel in-flight recording lives inside
//! [`DsmNode`](crate::DsmNode) (`snap_begin`/`snap_close`/`snap_finish`),
//! and the application drives both from its iteration loop. The board is
//! the meeting point: every rank posts its frame, and the first post that
//! completes a cut publishes it (and optionally persists it as a
//! [`CkptKind::ConsistentCut`](nscc_ckpt::CkptKind) generation).
//!
//! Like the GA layer's `ConvergenceBoard` pattern, the board is
//! measurement-plane machinery with **zero virtual cost**: posting and
//! reading it never advances simulated time, so snapshot-on runs stay
//! byte-identical to snapshot-off runs.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use nscc_ckpt::{save_cut, CkptStore, CutFrame, GlobalCut};
use nscc_msg::MarkerPlane;

/// Aggregate counters the board keeps about the snapshot protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapCounters {
    /// Cuts initiated (marker waves started).
    pub started: u64,
    /// Cuts that reached every rank and completed.
    pub completed: u64,
    /// In-flight channel messages recorded across all posted frames.
    pub inflight_recorded: u64,
}

struct BoardInner {
    ranks: usize,
    /// Incomplete cuts: id → rank → frame.
    pending: BTreeMap<u64, BTreeMap<u32, CutFrame>>,
    /// Newest completed cut.
    latest: Option<GlobalCut>,
    /// Optional persistence: completed cuts become consistent-cut
    /// generations here.
    store: Option<CkptStore>,
    counters: SnapCounters,
    /// Persistence failures (never fatal for the run; the in-memory cut
    /// is still available for warm restores).
    persist_errors: u64,
    /// Live recording state per rank: rank → (cut id, open channels,
    /// in-flight updates recorded so far). Pure diagnostics — ranks
    /// refresh it while a wave is active and clear it on finish, and the
    /// sim watchdog reads it as deadlock breadcrumbs.
    waves: BTreeMap<u32, (u64, usize, usize)>,
}

/// Shared collection point for one world's consistent cuts.
#[derive(Clone)]
pub struct SnapshotBoard {
    inner: Arc<Mutex<BoardInner>>,
}

impl fmt::Debug for SnapshotBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("SnapshotBoard")
            .field("ranks", &g.ranks)
            .field("pending", &g.pending.len())
            .field("counters", &g.counters)
            .finish()
    }
}

impl SnapshotBoard {
    /// A board for `ranks` processes, in-memory only.
    pub fn new(ranks: usize) -> Self {
        SnapshotBoard {
            inner: Arc::new(Mutex::new(BoardInner {
                ranks,
                pending: BTreeMap::new(),
                latest: None,
                store: None,
                counters: SnapCounters::default(),
                persist_errors: 0,
                waves: BTreeMap::new(),
            })),
        }
    }

    /// Persist completed cuts into `store` as consistent-cut generations
    /// (generation number = cut id).
    pub fn with_store(self, store: CkptStore) -> Self {
        self.inner.lock().store = Some(store);
        self
    }

    /// Note a new marker wave (called once per cut by its initiator).
    pub fn note_start(&self, _id: u64) {
        self.inner.lock().counters.started += 1;
    }

    /// Post one rank's frame for cut `id`, with the number of in-flight
    /// messages it recorded. The post that delivers the final missing
    /// rank completes the cut: it becomes [`latest_complete`]
    /// (newest-id wins) and is persisted when a store is attached
    /// (`t_ns` stamps the generation header).
    ///
    /// [`latest_complete`]: SnapshotBoard::latest_complete
    pub fn post(&self, id: u64, frame: CutFrame, recorded: u64, t_ns: u64) {
        let mut g = self.inner.lock();
        g.counters.inflight_recorded += recorded;
        let ranks = g.ranks;
        let slot = g.pending.entry(id).or_default();
        slot.insert(frame.rank, frame);
        if slot.len() < ranks {
            return;
        }
        let frames = g
            .pending
            .remove(&id)
            .expect("cut present")
            .into_values()
            .collect();
        let cut = GlobalCut { id, frames };
        g.counters.completed += 1;
        if let Some(store) = &g.store {
            if save_cut(store, &cut, t_ns).is_err() {
                g.persist_errors += 1;
            }
        }
        match &g.latest {
            Some(prev) if prev.id >= id => {}
            _ => g.latest = Some(cut),
        }
        // Older incomplete cuts can never beat this one for restores;
        // drop them so a crashed rank's abandoned wave does not leak.
        g.pending.retain(|&k, _| k > id);
    }

    /// The newest completed cut, if any — the warm-restore source.
    pub fn latest_complete(&self) -> Option<GlobalCut> {
        self.inner.lock().latest.clone()
    }

    /// Protocol counters so far.
    pub fn counters(&self) -> SnapCounters {
        self.inner.lock().counters
    }

    /// Completed cuts that failed to persist to the attached store.
    pub fn persist_errors(&self) -> u64 {
        self.inner.lock().persist_errors
    }

    /// Refresh one rank's live recording state: the cut it is recording,
    /// how many incoming channels still await their closing marker, and
    /// how many in-flight updates it captured so far.
    pub fn note_wave(&self, rank: u32, id: u64, open: usize, recorded: usize) {
        self.inner.lock().waves.insert(rank, (id, open, recorded));
    }

    /// Clear one rank's live recording state (its local cut finished).
    pub fn clear_wave(&self, rank: u32) {
        self.inner.lock().waves.remove(&rank);
    }

    /// Deadlock breadcrumbs: one line per rank still mid-recording (cut
    /// id, open channel count, in-flight depth) and one line per pending
    /// cut naming the ranks whose frames never arrived. Empty when no
    /// wave is in trouble — register this with the sim watchdog
    /// (`SimBuilder::deadlock_note`) so a wedged run explains its marker
    /// plane.
    pub fn wave_notes(&self) -> Vec<String> {
        let g = self.inner.lock();
        let mut notes = Vec::new();
        for (rank, (id, open, recorded)) in &g.waves {
            notes.push(format!(
                "marker plane: rank {rank} recording cut {id} ({open} channel(s) open, {recorded} in-flight update(s) recorded)"
            ));
        }
        for (id, frames) in &g.pending {
            let missing: Vec<String> = (0..g.ranks as u32)
                .filter(|r| !frames.contains_key(r))
                .map(|r| r.to_string())
                .collect();
            notes.push(format!(
                "marker plane: cut {id} incomplete ({}/{} frames posted, missing rank(s) {})",
                frames.len(),
                g.ranks,
                missing.join(",")
            ));
        }
        notes
    }
}

/// Everything an application thread needs to take part in the marker
/// protocol: the cut cadence, the marker fabric, and the board to post
/// frames to. Cloneable (all shared handles); one per world, handed to
/// every rank's config.
#[derive(Clone)]
pub struct SnapConfig {
    /// Initiate a cut every this many application iterations (rank 0
    /// starts the wave at `iter % every == 0`). Keep this equal to the
    /// checkpoint cadence (the age bound) so a cut restore never rolls
    /// back further than the staleness `Global_Read` tolerates.
    pub every: u64,
    /// The out-of-band marker fabric.
    pub plane: MarkerPlane,
    /// Where completed frames meet.
    pub board: SnapshotBoard,
}

impl fmt::Debug for SnapConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapConfig")
            .field("every", &self.every)
            .field("ranks", &self.plane.ranks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(rank: u32, gen: u64) -> CutFrame {
        CutFrame {
            rank,
            gen,
            state: vec![rank as u8],
            inflight: Vec::new(),
        }
    }

    #[test]
    fn cut_completes_when_every_rank_posts() {
        let board = SnapshotBoard::new(3);
        board.note_start(5);
        board.post(5, frame(0, 10), 2, 100);
        board.post(5, frame(2, 12), 0, 110);
        assert!(board.latest_complete().is_none(), "one rank still missing");
        board.post(5, frame(1, 11), 1, 120);
        let cut = board.latest_complete().expect("complete");
        assert_eq!(cut.id, 5);
        assert_eq!(cut.frames.len(), 3);
        let c = board.counters();
        assert_eq!((c.started, c.completed, c.inflight_recorded), (1, 1, 3));
    }

    #[test]
    fn newer_cut_supersedes_and_drops_stale_waves() {
        let board = SnapshotBoard::new(2);
        // Wave 3 stalls (rank 1 never posts)…
        board.post(3, frame(0, 6), 0, 10);
        // …wave 7 completes.
        board.post(7, frame(0, 14), 0, 20);
        board.post(7, frame(1, 14), 0, 21);
        assert_eq!(board.latest_complete().unwrap().id, 7);
        // A late post for wave 3 finds its slot gone and never completes
        // a stale cut over the newer one.
        board.post(3, frame(1, 6), 0, 30);
        assert_eq!(board.latest_complete().unwrap().id, 7);
    }

    #[test]
    fn completed_cuts_persist_as_consistent_cut_generations() {
        let dir = std::env::temp_dir().join(format!("nscc-board-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CkptStore::open(&dir).unwrap();
        let board = SnapshotBoard::new(2).with_store(CkptStore::open(&dir).unwrap());
        board.post(4, frame(0, 8), 0, 40);
        board.post(4, frame(1, 8), 0, 41);
        let back = nscc_ckpt::load_latest_cut(&store)
            .unwrap()
            .expect("persisted");
        assert_eq!(back.id, 4);
        assert_eq!(board.persist_errors(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
