//! Construction of a DSM world: directory + communication layer + per-rank
//! nodes with seeded initial values.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use nscc_msg::{CommStats, CommWorld, MsgConfig};
use nscc_net::{Network, WarpMeter};
use nscc_obs::Hub;
use nscc_sim::{SimBuilder, SimTime};

use crate::directory::{Directory, LocId};
use crate::node::{DsmMsg, DsmNode, DsmStats};

/// A DSM spanning `ranks` processes over one simulated network.
///
/// Build it once, hand each rank its [`DsmNode`] via
/// [`node`](DsmWorld::node), then read aggregate statistics after the run.
pub struct DsmWorld<T: Send + 'static> {
    comm: CommWorld<DsmMsg<T>>,
    dir: Arc<Directory>,
    initial: HashMap<LocId, T>,
    history: usize,
    coalesce: u64,
    read_timeout: Option<SimTime>,
    inject_stale: u64,
    stats: Arc<Mutex<Vec<DsmStats>>>,
    obs: Option<Hub>,
}

impl<T: Clone + Serialize + Send + 'static> DsmWorld<T> {
    /// Create a world of `ranks` nodes over `net` with the given directory.
    pub fn new(net: Network, ranks: usize, cfg: MsgConfig, dir: Directory) -> Self {
        DsmWorld {
            comm: CommWorld::new(net, ranks, cfg),
            dir: Arc::new(dir),
            initial: HashMap::new(),
            history: 0,
            coalesce: 1,
            read_timeout: None,
            inject_stale: 0,
            stats: Arc::new(Mutex::new(vec![DsmStats::default(); ranks])),
            obs: None,
        }
    }

    /// Attach a warp meter to the underlying message layer.
    pub fn with_warp(mut self, warp: WarpMeter) -> Self {
        self.comm = self.comm.with_warp(warp);
        self
    }

    /// Attach an observability hub: every node built afterwards emits
    /// structured read/write/barrier events, and the message layer
    /// forwards warp samples (when a meter is attached). Detached costs
    /// one branch per operation. The directory's location names are
    /// registered with the hub so heatmaps and dependency listings render
    /// `best`/`mig3` instead of raw location ids.
    pub fn with_obs(mut self, hub: Hub) -> Self {
        for (loc, meta) in self.dir.iter() {
            hub.set_loc_name(loc.0, meta.name.clone());
        }
        self.comm = self.comm.with_obs(hub.clone());
        self.obs = Some(hub);
        self
    }

    /// Propagate only every `k`-th write per location from every node
    /// (Mermera-style update coalescing; see
    /// [`DsmNode::set_coalescing`]).
    pub fn with_coalescing(mut self, k: u64) -> Self {
        assert!(k >= 1, "coalescing factor must be at least 1");
        self.coalesce = k;
        self
    }

    /// Bound how long any node's blocked read or barrier wait may go
    /// without progress before degrading: reads return the freshest
    /// cached value (tagged [`ReadOutcome::degraded`](crate::ReadOutcome))
    /// and barriers stop waiting on peers the failure detector has
    /// declared dead. `None` (the default) preserves the paper's
    /// wait-forever semantics. Pair with
    /// [`spawn_heartbeats`](DsmWorld::spawn_heartbeats) so silence
    /// implies death rather than idleness.
    pub fn with_read_timeout(mut self, timeout: SimTime) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Arm deliberate coherence sabotage on every node built afterwards:
    /// each node's first `n` would-block `Global_Read`s return their
    /// stale cached value immediately, violating the age bound on
    /// purpose (see [`DsmNode::set_stale_injection`]). This exists to
    /// validate the audit pipeline end-to-end; 0 (the default) is off.
    pub fn with_stale_injection(mut self, n: u64) -> Self {
        self.inject_stale = n;
        self
    }

    /// Spawn one daemon per rank that beacons [`DsmMsg::Heartbeat`] to
    /// every peer each `period`, keeping the failure detector's
    /// last-heard stamps fresh while a node computes silently. Daemons
    /// never prolong the run; call after building the world, before
    /// `sim.run()`.
    pub fn spawn_heartbeats(&self, sim: &mut SimBuilder, period: SimTime) {
        assert!(period > SimTime::ZERO, "heartbeat period must be positive");
        let ranks = self.ranks();
        for rank in 0..ranks {
            let ep = self.comm.endpoint(rank);
            sim.spawn_daemon(format!("heartbeat{rank}"), move |ctx| loop {
                ctx.advance(period);
                for peer in (0..ranks).filter(|&p| p != rank) {
                    ep.send(ctx, peer, DsmMsg::Heartbeat);
                }
            });
        }
    }

    /// Retain a window of `depth` past versions per location in every
    /// cache, enabling [`DsmNode::get_version`]/[`DsmNode::wait_version`]
    /// (needed by rollback-style consumers that read per-iteration values).
    pub fn with_history(mut self, depth: usize) -> Self {
        self.history = depth;
        self
    }

    /// Seed `loc` with an initial value (age 0) in every cache that can see
    /// it. Reads with a requirement of age ≥ 0 succeed immediately on it.
    pub fn set_initial(&mut self, loc: LocId, value: T) {
        self.initial.insert(loc, value);
    }

    /// The static directory.
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.comm.ranks()
    }

    /// Build the node for `rank`; call once per rank and move the node into
    /// that rank's process closure.
    pub fn node(&self, rank: usize) -> DsmNode<T> {
        let mut cache = HashMap::new();
        for (loc, meta) in self.dir.iter() {
            if meta.writer == rank || meta.readers.contains(&rank) {
                if let Some(v) = self.initial.get(&loc) {
                    cache.insert(loc, (0u64, v.clone()));
                }
            }
        }
        let mut node = DsmNode::new(
            rank,
            self.comm.endpoint(rank),
            Arc::clone(&self.dir),
            cache,
            self.history,
            Arc::clone(&self.stats),
            self.obs.clone(),
        );
        if self.coalesce > 1 {
            node.set_coalescing(self.coalesce);
        }
        if let Some(to) = self.read_timeout {
            node.set_timeout(to);
        }
        if self.inject_stale > 0 {
            node.set_stale_injection(self.inject_stale);
        }
        node
    }

    /// Per-rank DSM counters (updated continuously during the run).
    pub fn stats(&self) -> Vec<DsmStats> {
        self.stats.lock().clone()
    }

    /// Sum of all ranks' DSM counters.
    pub fn total_stats(&self) -> DsmStats {
        let mut total = DsmStats::default();
        for s in self.stats.lock().iter() {
            total.merge(s);
        }
        total
    }

    /// Message-layer counters.
    pub fn comm_stats(&self) -> CommStats {
        self.comm.stats()
    }
}
