//! Construction of a DSM world: directory + communication layer + per-rank
//! nodes with seeded initial values.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use nscc_msg::{CommStats, CommWorld, MsgConfig};
use nscc_net::{Network, WarpMeter};
use nscc_obs::Hub;

use crate::directory::{Directory, LocId};
use crate::node::{DsmMsg, DsmNode, DsmStats};

/// A DSM spanning `ranks` processes over one simulated network.
///
/// Build it once, hand each rank its [`DsmNode`] via
/// [`node`](DsmWorld::node), then read aggregate statistics after the run.
pub struct DsmWorld<T: Send + 'static> {
    comm: CommWorld<DsmMsg<T>>,
    dir: Arc<Directory>,
    initial: HashMap<LocId, T>,
    history: usize,
    coalesce: u64,
    stats: Arc<Mutex<Vec<DsmStats>>>,
    obs: Option<Hub>,
}

impl<T: Clone + Serialize + Send + 'static> DsmWorld<T> {
    /// Create a world of `ranks` nodes over `net` with the given directory.
    pub fn new(net: Network, ranks: usize, cfg: MsgConfig, dir: Directory) -> Self {
        DsmWorld {
            comm: CommWorld::new(net, ranks, cfg),
            dir: Arc::new(dir),
            initial: HashMap::new(),
            history: 0,
            coalesce: 1,
            stats: Arc::new(Mutex::new(vec![DsmStats::default(); ranks])),
            obs: None,
        }
    }

    /// Attach a warp meter to the underlying message layer.
    pub fn with_warp(mut self, warp: WarpMeter) -> Self {
        self.comm = self.comm.with_warp(warp);
        self
    }

    /// Attach an observability hub: every node built afterwards emits
    /// structured read/write/barrier events, and the message layer
    /// forwards warp samples (when a meter is attached). Detached costs
    /// one branch per operation.
    pub fn with_obs(mut self, hub: Hub) -> Self {
        self.comm = self.comm.with_obs(hub.clone());
        self.obs = Some(hub);
        self
    }

    /// Propagate only every `k`-th write per location from every node
    /// (Mermera-style update coalescing; see
    /// [`DsmNode::set_coalescing`]).
    pub fn with_coalescing(mut self, k: u64) -> Self {
        assert!(k >= 1, "coalescing factor must be at least 1");
        self.coalesce = k;
        self
    }

    /// Retain a window of `depth` past versions per location in every
    /// cache, enabling [`DsmNode::get_version`]/[`DsmNode::wait_version`]
    /// (needed by rollback-style consumers that read per-iteration values).
    pub fn with_history(mut self, depth: usize) -> Self {
        self.history = depth;
        self
    }

    /// Seed `loc` with an initial value (age 0) in every cache that can see
    /// it. Reads with a requirement of age ≥ 0 succeed immediately on it.
    pub fn set_initial(&mut self, loc: LocId, value: T) {
        self.initial.insert(loc, value);
    }

    /// The static directory.
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.comm.ranks()
    }

    /// Build the node for `rank`; call once per rank and move the node into
    /// that rank's process closure.
    pub fn node(&self, rank: usize) -> DsmNode<T> {
        let mut cache = HashMap::new();
        for (loc, meta) in self.dir.iter() {
            if meta.writer == rank || meta.readers.contains(&rank) {
                if let Some(v) = self.initial.get(&loc) {
                    cache.insert(loc, (0u64, v.clone()));
                }
            }
        }
        let mut node = DsmNode::new(
            rank,
            self.comm.endpoint(rank),
            Arc::clone(&self.dir),
            cache,
            self.history,
            Arc::clone(&self.stats),
            self.obs.clone(),
        );
        if self.coalesce > 1 {
            node.set_coalescing(self.coalesce);
        }
        node
    }

    /// Per-rank DSM counters (updated continuously during the run).
    pub fn stats(&self) -> Vec<DsmStats> {
        self.stats.lock().clone()
    }

    /// Sum of all ranks' DSM counters.
    pub fn total_stats(&self) -> DsmStats {
        let mut total = DsmStats::default();
        for s in self.stats.lock().iter() {
            total.merge(s);
        }
        total
    }

    /// Message-layer counters.
    pub fn comm_stats(&self) -> CommStats {
        self.comm.stats()
    }
}
