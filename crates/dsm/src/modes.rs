//! The three coherence disciplines the paper compares.

use std::fmt;

/// How a parallel program reads shared locations (§5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coherence {
    /// BSP-style: an explicit message barrier every iteration plus reads
    /// that require the peer value from the *current* iteration.
    Synchronous,
    /// Never block: read whatever the local cache holds, however stale
    /// (slow-memory style; the uncontrolled asynchronous implementation).
    FullyAsync,
    /// The paper's contribution: block only until the cached value is at
    /// most `age` iterations older than the reader's current iteration
    /// (`Global_Read`). `age = 0` removes barrier overhead but exploits no
    /// asynchrony; larger ages trade staleness for progress.
    PartialAsync {
        /// Maximum acceptable staleness in iterations.
        age: u64,
    },
}

impl Coherence {
    /// The required-age bound a read at `curr_iter` imposes, or `None` for
    /// a never-blocking read.
    pub fn required_age(self, curr_iter: u64) -> Option<u64> {
        match self {
            Coherence::Synchronous => Some(curr_iter),
            Coherence::FullyAsync => None,
            Coherence::PartialAsync { age } => Some(curr_iter.saturating_sub(age)),
        }
    }

    /// Whether this mode runs a per-iteration barrier.
    pub fn uses_barrier(self) -> bool {
        matches!(self, Coherence::Synchronous)
    }

    /// Short label used in experiment tables (`sync`, `async`, `age=N`).
    pub fn label(self) -> String {
        match self {
            Coherence::Synchronous => "sync".into(),
            Coherence::FullyAsync => "async".into(),
            Coherence::PartialAsync { age } => format!("age={age}"),
        }
    }

    /// Parse a [`Coherence::label`] string back into a mode (`sync`,
    /// `async`, `age=N`), e.g. for the `NSCC_MODES` environment variable.
    pub fn parse(label: &str) -> Option<Coherence> {
        match label.trim() {
            "sync" => Some(Coherence::Synchronous),
            "async" => Some(Coherence::FullyAsync),
            s => s
                .strip_prefix("age=")
                .and_then(|n| n.parse().ok())
                .map(|age| Coherence::PartialAsync { age }),
        }
    }
}

impl fmt::Display for Coherence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_age_bounds() {
        assert_eq!(Coherence::Synchronous.required_age(7), Some(7));
        assert_eq!(Coherence::FullyAsync.required_age(7), None);
        assert_eq!(Coherence::PartialAsync { age: 3 }.required_age(7), Some(4));
        // Saturates at iteration 0 (initial values are age 0).
        assert_eq!(Coherence::PartialAsync { age: 10 }.required_age(7), Some(0));
    }

    #[test]
    fn labels() {
        assert_eq!(Coherence::Synchronous.label(), "sync");
        assert_eq!(Coherence::FullyAsync.label(), "async");
        assert_eq!(Coherence::PartialAsync { age: 5 }.label(), "age=5");
    }

    #[test]
    fn parse_round_trips_labels() {
        for mode in [
            Coherence::Synchronous,
            Coherence::FullyAsync,
            Coherence::PartialAsync { age: 0 },
            Coherence::PartialAsync { age: 30 },
        ] {
            assert_eq!(Coherence::parse(&mode.label()), Some(mode));
        }
        assert_eq!(
            Coherence::parse(" age=5 "),
            Some(Coherence::PartialAsync { age: 5 })
        );
        assert_eq!(Coherence::parse("age="), None);
        assert_eq!(Coherence::parse("age=x"), None);
        assert_eq!(Coherence::parse("serial"), None);
    }

    #[test]
    fn only_sync_uses_barrier() {
        assert!(Coherence::Synchronous.uses_barrier());
        assert!(!Coherence::FullyAsync.uses_barrier());
        assert!(!Coherence::PartialAsync { age: 0 }.uses_barrier());
    }
}
