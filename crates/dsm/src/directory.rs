//! The location directory: which rank writes each shared location, which
//! ranks read it.
//!
//! The paper's applications have compile-time-known readers for every
//! shared value (§4.1), which is what lets the DSM implement writes as
//! direct sends. The directory captures exactly that static knowledge.

/// Identifier of a shared location (dense index into the directory).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize)]
pub struct LocId(pub u32);

impl nscc_ckpt::Snapshot for LocId {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u32(self.0);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(LocId(dec.u32()?))
    }
}

impl LocId {
    /// Dense index of this location.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static metadata for one shared location.
#[derive(Debug, Clone)]
pub struct LocMeta {
    /// Diagnostic name.
    pub name: String,
    /// The unique writing rank.
    pub writer: usize,
    /// Ranks that read the location (may include the writer; the writer
    /// always reads its own copy locally for free).
    pub readers: Vec<usize>,
}

/// Builder/owner of the static location table shared by all ranks.
#[derive(Debug, Default, Clone)]
pub struct Directory {
    locs: Vec<LocMeta>,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Register a location with its unique `writer` and its `readers`.
    /// Readers equal to the writer are dropped (local reads are free).
    pub fn add(
        &mut self,
        name: impl Into<String>,
        writer: usize,
        readers: impl IntoIterator<Item = usize>,
    ) -> LocId {
        let id = LocId(self.locs.len() as u32);
        let mut readers: Vec<usize> = readers.into_iter().filter(|&r| r != writer).collect();
        readers.sort_unstable();
        readers.dedup();
        self.locs.push(LocMeta {
            name: name.into(),
            writer,
            readers,
        });
        id
    }

    /// Convenience for the common all-to-all pattern of the island GA: one
    /// location per rank, written by that rank and read by everyone else.
    /// Returns the per-rank location ids.
    pub fn add_per_rank(&mut self, prefix: &str, ranks: usize) -> Vec<LocId> {
        (0..ranks)
            .map(|w| self.add(format!("{prefix}{w}"), w, 0..ranks))
            .collect()
    }

    /// One location per rank on a bidirectional ring: rank `w`'s location
    /// is read by `w±1 (mod ranks)` — the classic low-traffic island-GA
    /// migration topology (§3.1 lists topology among the migration
    /// parameters).
    pub fn add_ring(&mut self, prefix: &str, ranks: usize) -> Vec<LocId> {
        (0..ranks)
            .map(|w| {
                let readers: Vec<usize> = if ranks <= 1 {
                    Vec::new()
                } else if ranks == 2 {
                    vec![(w + 1) % ranks]
                } else {
                    vec![(w + 1) % ranks, (w + ranks - 1) % ranks]
                };
                self.add(format!("{prefix}{w}"), w, readers)
            })
            .collect()
    }

    /// One location per rank with `k` distinct random readers each
    /// (deterministic per `seed`).
    pub fn add_random_topology(
        &mut self,
        prefix: &str,
        ranks: usize,
        k: usize,
        seed: u64,
    ) -> Vec<LocId> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..ranks)
            .map(|w| {
                let mut others: Vec<usize> = (0..ranks).filter(|&r| r != w).collect();
                others.shuffle(&mut rng);
                others.truncate(k.min(others.len()));
                self.add(format!("{prefix}{w}"), w, others)
            })
            .collect()
    }

    /// Metadata for `loc`.
    pub fn meta(&self, loc: LocId) -> &LocMeta {
        &self.locs[loc.index()]
    }

    /// Number of registered locations.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// True when no locations are registered.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Iterate over `(LocId, &LocMeta)`.
    pub fn iter(&self) -> impl Iterator<Item = (LocId, &LocMeta)> {
        self.locs
            .iter()
            .enumerate()
            .map(|(i, m)| (LocId(i as u32), m))
    }

    /// All locations read by `rank` (i.e. whose updates will arrive there).
    pub fn read_by(&self, rank: usize) -> Vec<LocId> {
        self.iter()
            .filter(|(_, m)| m.readers.contains(&rank))
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_dedups_and_drops_writer_from_readers() {
        let mut d = Directory::new();
        let id = d.add("x", 1, [0, 1, 2, 2, 0]);
        let m = d.meta(id);
        assert_eq!(m.writer, 1);
        assert_eq!(m.readers, vec![0, 2]);
    }

    #[test]
    fn per_rank_all_to_all() {
        let mut d = Directory::new();
        let locs = d.add_per_rank("best", 3);
        assert_eq!(locs.len(), 3);
        assert_eq!(d.meta(locs[1]).writer, 1);
        assert_eq!(d.meta(locs[1]).readers, vec![0, 2]);
        assert_eq!(d.read_by(0), vec![locs[1], locs[2]]);
    }

    #[test]
    fn empty_directory() {
        let d = Directory::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
