//! Dynamic (runtime) staleness control — the paper's §6 future work:
//! "we are experimenting with dynamic (runtime) setting of tolerable age
//! (staleness) levels when using Global_Read".
//!
//! [`AgeController`] adjusts the age bound between a floor and a ceiling
//! from two observable signals the reader already has:
//!
//! * **blocking pressure** — the fraction of recent reads that blocked.
//!   Blocking means the bound is tighter than the system can currently
//!   sustain (network delay or peer skew): *raise* the age to keep
//!   computing through the disturbance.
//! * **slack** — how much younger than required the returned values are.
//!   Large slack means the bound is far looser than needed: *lower* the
//!   age to tighten staleness (better convergence) at no blocking cost.
//!
//! The controller is deliberately simple (additive-increase /
//! additive-decrease over a sliding window) so its behaviour is easy to
//! reason about; it lives in the DSM because the signals are DSM-level.

/// Adaptive age bound for `Global_Read`.
#[derive(Debug, Clone)]
pub struct AgeController {
    /// Smallest age the controller may choose.
    pub min_age: u64,
    /// Largest age the controller may choose.
    pub max_age: u64,
    /// Reads per adaptation window.
    pub window: u32,
    /// Raise the age when more than this fraction of reads blocked.
    pub raise_above: f64,
    /// Lower the age when mean slack exceeds this many iterations.
    pub lower_above_slack: f64,
    age: u64,
    reads: u32,
    blocked: u32,
    slack_sum: u64,
    adjustments: u64,
}

impl AgeController {
    /// A controller starting at `initial`, bounded to `[min_age, max_age]`.
    pub fn new(initial: u64, min_age: u64, max_age: u64) -> Self {
        assert!(min_age <= max_age, "empty age range");
        AgeController {
            min_age,
            max_age,
            window: 32,
            raise_above: 0.25,
            lower_above_slack: 3.0,
            age: initial.clamp(min_age, max_age),
            reads: 0,
            blocked: 0,
            slack_sum: 0,
            adjustments: 0,
        }
    }

    /// The age bound to use for the next `Global_Read`.
    pub fn current(&self) -> u64 {
        self.age
    }

    /// Number of times the controller changed the age.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Record the outcome of one read: whether it blocked, and the value's
    /// slack (`returned_age - required_age`, i.e. how much fresher than
    /// necessary it was). Adapts once per window.
    pub fn observe(&mut self, blocked: bool, slack: u64) {
        self.reads += 1;
        self.blocked += u32::from(blocked);
        self.slack_sum += slack;
        if self.reads < self.window {
            return;
        }
        let blocked_frac = f64::from(self.blocked) / f64::from(self.reads);
        let mean_slack = self.slack_sum as f64 / f64::from(self.reads);
        let before = self.age;
        if blocked_frac > self.raise_above {
            // Under pressure: tolerate more staleness (AIMD-style step up
            // proportional to pressure).
            let step = 1 + (blocked_frac * 4.0) as u64;
            self.age = (self.age + step).min(self.max_age);
        } else if mean_slack > self.lower_above_slack && self.age > self.min_age {
            // Plenty of slack: tighten for convergence quality.
            self.age -= 1;
        }
        if self.age != before {
            self.adjustments += 1;
        }
        self.reads = 0;
        self.blocked = 0;
        self.slack_sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_window(ctl: &mut AgeController, blocked: bool, slack: u64) {
        for _ in 0..ctl.window {
            ctl.observe(blocked, slack);
        }
    }

    #[test]
    fn starts_clamped() {
        let ctl = AgeController::new(100, 2, 30);
        assert_eq!(ctl.current(), 30);
        let ctl = AgeController::new(0, 2, 30);
        assert_eq!(ctl.current(), 2);
    }

    #[test]
    fn raises_under_blocking_pressure() {
        let mut ctl = AgeController::new(5, 0, 30);
        drain_window(&mut ctl, true, 0);
        assert!(ctl.current() > 5, "full blocking must raise the age");
        assert!(ctl.current() <= 30);
    }

    #[test]
    fn lowers_when_slack_is_plentiful() {
        let mut ctl = AgeController::new(20, 0, 30);
        drain_window(&mut ctl, false, 10);
        assert_eq!(ctl.current(), 19, "large slack tightens by one");
    }

    #[test]
    fn stays_put_in_the_comfortable_band() {
        let mut ctl = AgeController::new(10, 0, 30);
        drain_window(&mut ctl, false, 1);
        assert_eq!(ctl.current(), 10);
        assert_eq!(ctl.adjustments(), 0);
    }

    #[test]
    fn respects_bounds_under_sustained_pressure() {
        let mut ctl = AgeController::new(5, 2, 12);
        for _ in 0..50 {
            drain_window(&mut ctl, true, 0);
        }
        assert_eq!(ctl.current(), 12);
        let mut ctl = AgeController::new(10, 2, 12);
        for _ in 0..50 {
            drain_window(&mut ctl, false, 100);
        }
        assert_eq!(ctl.current(), 2);
    }

    #[test]
    fn adapts_back_and_forth() {
        let mut ctl = AgeController::new(5, 0, 30);
        drain_window(&mut ctl, true, 0);
        let raised = ctl.current();
        // Pressure gone and slack high: drifts back down.
        for _ in 0..40 {
            drain_window(&mut ctl, false, 8);
        }
        assert!(ctl.current() < raised);
        assert!(ctl.adjustments() >= 2);
    }
}
