//! # nscc-dsm — non-strict cache coherence and the `Global_Read` primitive
//!
//! The paper's contribution (Tambat & Vajapeyam, ICPP 2000). A software DSM
//! for data-race-tolerant iterative applications:
//!
//! * every shared location has one writer and compile-time-known readers
//!   ([`Directory`]);
//! * writes stamp the writer's iteration number as the value's **age** and
//!   push the value to all readers ([`DsmNode::write`]);
//! * [`DsmNode::global_read`]`(loc, curr_iter, age)` returns a value
//!   generated no earlier than iteration `curr_iter − age` of the writer,
//!   blocking the reader until one arrives — *non-strict coherence with a
//!   bounded staleness window*. Blocking the reader is what throttles the
//!   whole computation (program-level flow control): a blocked process
//!   sends nothing, so runaway nodes cannot flood the network.
//!
//! Three disciplines ([`Coherence`]) cover the paper's comparison points:
//! synchronous (barrier per iteration), fully asynchronous (never block),
//! and partially asynchronous (`Global_Read` with a chosen age).
#![warn(missing_docs)]

mod adaptive;
mod directory;
mod modes;
mod node;
mod snap;
mod world;

pub use adaptive::AgeController;
pub use directory::{Directory, LocId, LocMeta};
pub use modes::Coherence;
pub use node::{DsmMsg, DsmNode, DsmStats, ReadOutcome, Retired, RETIRE_AGE};
pub use snap::{SnapConfig, SnapCounters, SnapshotBoard};
pub use world::DsmWorld;
