//! Graceful degradation of the DSM under silence: read timeouts, the
//! heartbeat failure detector, and barriers that survive absent peers.

use nscc_dsm::{Directory, DsmWorld};
use nscc_msg::MsgConfig;
use nscc_net::{IdealMedium, Network};
use nscc_sim::{SimBuilder, SimTime};

fn world_with_timeout(ranks: usize, dir: Directory, timeout: SimTime) -> DsmWorld<u64> {
    DsmWorld::new(
        Network::new(IdealMedium::new(SimTime::from_millis(1))),
        ranks,
        MsgConfig::default(),
        dir,
    )
    .with_read_timeout(timeout)
}

#[test]
fn silent_writer_degrades_read_to_cached_value() {
    let mut dir = Directory::new();
    let loc = dir.add("x", 1, [0]);
    let mut world = world_with_timeout(2, dir, SimTime::from_millis(20));
    world.set_initial(loc, 7);

    let mut reader = world.node(0);
    // Rank 1 (the writer) never runs: its updates will never come.
    let mut sim = SimBuilder::new(0);
    sim.spawn("reader", move |ctx| {
        let out = reader.global_read_ex(ctx, loc, 5, 1);
        // The bound (age >= 4) is unsatisfiable; after the timeout the
        // read must hand back the seeded value and say so.
        assert!(out.degraded);
        assert!(out.blocked);
        assert_eq!((out.age, out.value), (0, 7));
        assert_eq!(out.required, 4);
        assert!(ctx.now() >= SimTime::from_millis(20));
    });
    sim.run().unwrap();
    assert_eq!(world.total_stats().degraded_reads, 1);
    assert_eq!(world.total_stats().blocked_reads, 1);
}

#[test]
fn barrier_proceeds_past_absent_peer() {
    let mut dir = Directory::new();
    dir.add("x", 0, [1, 2]);
    let world = world_with_timeout(3, dir, SimTime::from_millis(50));

    let mut coord = world.node(0);
    let mut follower = world.node(1);
    // Rank 2 never reaches the barrier (crashed before the run).
    let mut sim = SimBuilder::new(0);
    sim.spawn("rank0", move |ctx| {
        coord.barrier(ctx, 1);
        assert!(coord.suspected().contains(&2));
        assert!(!coord.suspected().contains(&1));
    });
    sim.spawn("rank1", move |ctx| {
        follower.barrier(ctx, 1);
    });
    sim.run().unwrap();
    // Without heartbeats the follower may also (falsely) suspect the
    // busy-waiting coordinator — see heartbeats_keep_silent_but_alive_
    // peers_trusted for the remedy. The coordinator's view, asserted
    // inside the run, is what matters here.
    let total = world.total_stats();
    assert_eq!(total.barriers, 2);
    assert!(total.suspected_writers >= 1);
    assert!(total.barrier_timeouts >= 1);
}

#[test]
fn heartbeats_keep_silent_but_alive_peers_trusted() {
    let mut dir = Directory::new();
    dir.add("x", 0, [1]);
    let world = world_with_timeout(2, dir, SimTime::from_millis(50));

    let mut coord = world.node(0);
    let mut worker = world.node(1);
    let mut sim = SimBuilder::new(0);
    // Heartbeats every 20 ms clear a 50 ms silence window comfortably.
    world.spawn_heartbeats(&mut sim, SimTime::from_millis(20));
    sim.spawn("rank0", move |ctx| {
        coord.barrier(ctx, 1);
        assert!(coord.suspected().is_empty());
    });
    sim.spawn("rank1", move |ctx| {
        // A long silent compute phase: no messages, only heartbeats.
        ctx.advance(SimTime::from_millis(300));
        worker.barrier(ctx, 1);
    });
    sim.run().unwrap();
    let total = world.total_stats();
    assert_eq!(total.suspected_writers, 0);
    assert_eq!(total.barriers, 2);
}

#[test]
fn follower_abandons_barrier_when_coordinator_is_dead() {
    let mut dir = Directory::new();
    dir.add("x", 1, [0]);
    let world = world_with_timeout(2, dir, SimTime::from_millis(40));

    let mut follower = world.node(1);
    // Rank 0 — the coordinator — is gone; without the detector this
    // deadlocks (BarrierRelease can never arrive).
    let mut sim = SimBuilder::new(0);
    sim.spawn("rank1", move |ctx| {
        follower.barrier(ctx, 1);
        assert!(follower.suspected().contains(&0));
    });
    sim.run().unwrap();
    assert_eq!(world.total_stats().barrier_timeouts, 1);
}
