//! Behavioural tests of the Global_Read protocol across simulated ranks.

use std::sync::Arc;

use parking_lot::Mutex;

use nscc_dsm::{Coherence, Directory, DsmWorld};
use nscc_msg::MsgConfig;
use nscc_net::{EthernetBus, IdealMedium, Network};
use nscc_sim::{SimBuilder, SimTime};

fn ideal_world(ranks: usize, dir: Directory) -> DsmWorld<u64> {
    DsmWorld::new(
        Network::new(IdealMedium::new(SimTime::from_millis(1))),
        ranks,
        MsgConfig::default(),
        dir,
    )
}

#[test]
fn fresh_enough_cache_is_an_ordinary_read() {
    let mut dir = Directory::new();
    let loc = dir.add("x", 0, [1]);
    let mut world = ideal_world(2, dir);
    world.set_initial(loc, 0);

    let mut writer = world.node(0);
    let mut reader = world.node(1);
    let mut sim = SimBuilder::new(0);
    sim.spawn("writer", move |ctx| {
        writer.write(ctx, loc, 100, 1);
    });
    sim.spawn("reader", move |ctx| {
        // Give the update time to arrive.
        ctx.advance(SimTime::from_millis(50));
        let t0 = ctx.now();
        let (age, v) = reader.global_read(ctx, loc, 1, 0);
        assert_eq!((age, v), (1, 100));
        // Satisfied from cache: no blocking beyond the recv CPU overhead.
        assert!(ctx.now() - t0 < SimTime::from_millis(1));
    });
    sim.run().unwrap();
}

#[test]
fn read_blocks_until_acceptable_age_arrives() {
    let mut dir = Directory::new();
    let loc = dir.add("x", 0, [1]);
    let mut world = ideal_world(2, dir);
    world.set_initial(loc, 0);

    let stats = world.stats();
    assert_eq!(stats.len(), 2);

    let mut writer = world.node(0);
    let mut reader = world.node(1);
    let mut sim = SimBuilder::new(0);
    sim.spawn("writer", move |ctx| {
        for iter in 1..=5u64 {
            ctx.advance(SimTime::from_millis(10)); // slow compute
            writer.write(ctx, loc, iter * 100, iter);
        }
    });
    sim.spawn("reader", move |ctx| {
        // Needs age >= 3 immediately; writer reaches iteration 3 at ~30ms.
        let (age, v) = reader.global_read(ctx, loc, 3, 0);
        assert!(age >= 3, "returned age {age} violates the staleness bound");
        assert_eq!(v, age * 100);
        assert!(ctx.now() >= SimTime::from_millis(30));
    });
    sim.run().unwrap();
    let total = world.total_stats();
    assert_eq!(total.blocked_reads, 1);
    assert!(total.block_time > SimTime::from_millis(25));
}

#[test]
fn age_zero_initial_value_satisfies_iteration_zero() {
    let mut dir = Directory::new();
    let loc = dir.add("x", 0, [1]);
    let mut world = ideal_world(2, dir);
    world.set_initial(loc, 7);
    let mut reader = world.node(1);
    let mut sim = SimBuilder::new(0);
    sim.spawn("reader", move |ctx| {
        // required = saturating(0 - 10) = 0 -> initial value acceptable.
        let (age, v) = reader.global_read(ctx, loc, 0, 10);
        assert_eq!((age, v), (0, 7));
    });
    sim.spawn("writer-idle", |_ctx| {});
    sim.run().unwrap();
}

#[test]
fn global_read_throttles_a_fast_reader() {
    // The reader iterates at 1 ms/iter, the writer at 20 ms/iter. With
    // age=2 the reader cannot run more than 2 iterations ahead, so its
    // completion time is pinned to the writer's pace — the program-level
    // flow control at the heart of the paper.
    let mut dir = Directory::new();
    let loc = dir.add("x", 0, [1]);
    let mut world = ideal_world(2, dir);
    world.set_initial(loc, 0);

    let iters = 20u64;
    let mut writer = world.node(0);
    let mut reader = world.node(1);
    let reader_end = Arc::new(Mutex::new(SimTime::ZERO));
    let reader_end2 = Arc::clone(&reader_end);
    let mut sim = SimBuilder::new(0);
    sim.spawn("writer", move |ctx| {
        for iter in 1..=iters {
            ctx.advance(SimTime::from_millis(20));
            writer.write(ctx, loc, iter, iter);
        }
    });
    sim.spawn("reader", move |ctx| {
        for iter in 1..=iters {
            ctx.advance(SimTime::from_millis(1));
            let (age, _) = reader.global_read(ctx, loc, iter, 2);
            assert!(age + 2 >= iter, "staleness bound violated");
        }
        *reader_end2.lock() = ctx.now();
    });
    sim.run().unwrap();
    let end = *reader_end.lock();
    // Unthrottled the reader would finish at ~20 ms; throttled it tracks
    // the writer's iteration 18 at ~360 ms.
    assert!(
        end >= SimTime::from_millis(350),
        "reader finished at {end}, was not throttled"
    );
}

#[test]
fn fully_async_never_blocks_and_sees_staleness() {
    let mut dir = Directory::new();
    let loc = dir.add("x", 0, [1]);
    let mut world = ideal_world(2, dir);
    world.set_initial(loc, 0);

    let mut writer = world.node(0);
    let mut reader = world.node(1);
    let mut sim = SimBuilder::new(0);
    sim.spawn("writer", move |ctx| {
        for iter in 1..=10u64 {
            ctx.advance(SimTime::from_millis(50));
            writer.write(ctx, loc, iter, iter);
        }
    });
    sim.spawn("reader", move |ctx| {
        let mut max_staleness = 0i64;
        for iter in 1..=10u64 {
            ctx.advance(SimTime::from_millis(5));
            let (age, _) = reader.read(ctx, loc, iter, Coherence::FullyAsync);
            max_staleness = max_staleness.max(iter as i64 - age as i64);
        }
        // Reader finished its 10 iterations in ~50 ms having seen at most
        // the writer's first value: staleness grows unbounded.
        assert!(
            max_staleness >= 8,
            "expected deep staleness, saw {max_staleness}"
        );
        assert!(ctx.now() < SimTime::from_millis(100));
    });
    sim.run().unwrap();
    assert_eq!(world.total_stats().blocked_reads, 0);
}

#[test]
fn barrier_synchronizes_all_ranks() {
    let ranks = 4;
    let mut dir = Directory::new();
    let locs = dir.add_per_rank("v", ranks);
    let mut world = ideal_world(ranks, dir);
    for &l in &locs {
        world.set_initial(l, 0);
    }
    let after = Arc::new(Mutex::new(Vec::new()));
    let mut sim = SimBuilder::new(0);
    for r in 0..ranks {
        let mut node = world.node(r);
        let after = Arc::clone(&after);
        sim.spawn(format!("rank{r}"), move |ctx| {
            // Stagger arrival times.
            ctx.advance(SimTime::from_millis(10 * (r as u64 + 1)));
            node.barrier(ctx, 1);
            after.lock().push((r, ctx.now()));
        });
    }
    sim.run().unwrap();
    let after = after.lock();
    let slowest_arrival = SimTime::from_millis(40);
    for (r, t) in after.iter() {
        assert!(
            *t >= slowest_arrival,
            "rank {r} left the barrier at {t}, before the slowest arrival"
        );
    }
}

#[test]
fn repeated_barriers_stay_in_lockstep() {
    let ranks = 3;
    let dir = Directory::new();
    let world: DsmWorld<u64> = ideal_world(ranks, dir);
    let mut sim = SimBuilder::new(0);
    let counters = Arc::new(Mutex::new(vec![0u64; ranks]));
    for r in 0..ranks {
        let mut node = world.node(r);
        let counters = Arc::clone(&counters);
        sim.spawn(format!("rank{r}"), move |ctx| {
            for epoch in 1..=10u64 {
                ctx.advance(SimTime::from_millis((r as u64 + 1) * 3));
                node.barrier(ctx, epoch);
                let mut c = counters.lock();
                c[r] = epoch;
                // No rank can be more than one epoch ahead of any other
                // right after leaving a barrier.
                let (min, max) = (
                    *c.iter().min().expect("nonempty"),
                    *c.iter().max().expect("nonempty"),
                );
                assert!(max - min <= 1, "barrier lockstep broken: {c:?}");
            }
        });
    }
    sim.run().unwrap();
}

#[test]
fn sync_mode_matches_global_read_age_zero_values() {
    // Both disciplines must return the exact current-iteration value; the
    // sync one just pays barrier costs on top.
    for mode in [Coherence::Synchronous, Coherence::PartialAsync { age: 0 }] {
        let ranks = 2;
        let mut dir = Directory::new();
        let locs = dir.add_per_rank("v", ranks);
        let mut world = ideal_world(ranks, dir);
        for &l in &locs {
            world.set_initial(l, 0);
        }
        let mut sim = SimBuilder::new(0);
        for r in 0..ranks {
            let mut node = world.node(r);
            let my_loc = locs[r];
            let peer_loc = locs[1 - r];
            sim.spawn(format!("rank{r}"), move |ctx| {
                for iter in 1..=5u64 {
                    ctx.advance(SimTime::from_millis(2 + r as u64));
                    node.write(ctx, my_loc, iter * 10, iter);
                    let (age, v) = node.read(ctx, peer_loc, iter, mode);
                    assert_eq!(age, iter, "{mode}: exact-iteration value required");
                    assert_eq!(v, iter * 10);
                    if mode.uses_barrier() {
                        node.barrier(ctx, iter);
                    }
                }
            });
        }
        sim.run().unwrap();
    }
}

#[test]
fn ethernet_contention_is_visible_through_dsm() {
    // Eight ranks all-to-all on 10 Mbps Ethernet: blocked time under
    // age=0 must exceed blocked time under age=8 (staleness tolerance
    // absorbs network delay).
    let blocked_time = |age: u64| {
        let ranks = 8;
        let mut dir = Directory::new();
        let locs = dir.add_per_rank("v", ranks);
        let mut world: DsmWorld<Vec<u8>> = DsmWorld::new(
            Network::new(EthernetBus::ten_mbps(7)),
            ranks,
            MsgConfig::default(),
            dir,
        );
        for &l in &locs {
            world.set_initial(l, vec![0; 64]);
        }
        let mut sim = SimBuilder::new(7);
        for r in 0..ranks {
            let mut node = world.node(r);
            let locs = locs.clone();
            sim.spawn(format!("rank{r}"), move |ctx| {
                for iter in 1..=15u64 {
                    ctx.advance(SimTime::from_millis(3));
                    node.write(ctx, locs[r], vec![iter as u8; 64], iter);
                    for (q, &l) in locs.iter().enumerate() {
                        if q != r {
                            let (got, _) = node.global_read(ctx, l, iter, age);
                            assert!(got + age >= iter);
                        }
                    }
                }
            });
        }
        sim.run().unwrap();
        world.total_stats().block_time
    };
    let strict = blocked_time(0);
    let loose = blocked_time(8);
    assert!(
        strict > loose,
        "age=0 blocked {strict}, age=8 blocked {loose}; tolerance should reduce blocking"
    );
}

#[test]
fn versioned_world_retains_and_serves_exact_versions() {
    let mut dir = Directory::new();
    let loc = dir.add("x", 0, [1]);
    let mut world: DsmWorld<u64> = DsmWorld::new(
        Network::new(IdealMedium::new(SimTime::from_millis(1))),
        2,
        MsgConfig::default(),
        dir,
    )
    .with_history(16);
    world.set_initial(loc, 0);
    let mut writer = world.node(0);
    let mut reader = world.node(1);
    let mut sim = SimBuilder::new(0);
    sim.spawn("writer", move |ctx| {
        for iter in 1..=10u64 {
            ctx.advance(SimTime::from_millis(2));
            writer.write(ctx, loc, iter * 7, iter);
        }
    });
    sim.spawn("reader", move |ctx| {
        // Wait for a mid-stream version even after later ones arrive.
        let v = reader.wait_version(ctx, loc, 4).unwrap();
        assert_eq!(v, 28);
        ctx.advance(SimTime::from_millis(100));
        // All ten versions remain available in the window.
        reader.drain(ctx);
        for iter in 1..=10u64 {
            assert_eq!(reader.get_version(loc, iter), Some(&(iter * 7)));
        }
    });
    sim.run().unwrap();
}

#[test]
fn corrections_replace_versions_in_place() {
    let mut dir = Directory::new();
    let loc = dir.add("x", 0, [1]);
    let mut world: DsmWorld<u64> = DsmWorld::new(
        Network::new(IdealMedium::new(SimTime::from_millis(1))),
        2,
        MsgConfig::default(),
        dir,
    )
    .with_history(8);
    world.set_initial(loc, 0);
    let mut writer = world.node(0);
    let mut reader = world.node(1);
    let mut sim = SimBuilder::new(0);
    sim.spawn("writer", move |ctx| {
        writer.write(ctx, loc, 10, 1);
        writer.write(ctx, loc, 20, 2);
        // Rollback: correct version 1 after version 2 went out.
        writer.write(ctx, loc, 11, 1);
    });
    sim.spawn("reader", move |ctx| {
        ctx.advance(SimTime::from_millis(50));
        reader.drain(ctx);
        assert_eq!(reader.get_version(loc, 1), Some(&11));
        assert_eq!(reader.get_version(loc, 2), Some(&20));
        // Latest pointer still refers to the newest age.
        assert_eq!(reader.cached_age(loc), Some(2));
    });
    sim.run().unwrap();
}

#[test]
fn wait_version_observes_retirement() {
    let mut dir = Directory::new();
    let loc = dir.add("x", 0, [1]);
    let mut world: DsmWorld<u64> = DsmWorld::new(
        Network::new(IdealMedium::new(SimTime::from_millis(1))),
        2,
        MsgConfig::default(),
        dir,
    )
    .with_history(8);
    world.set_initial(loc, 0);
    let mut writer = world.node(0);
    let mut reader = world.node(1);
    let mut sim = SimBuilder::new(0);
    sim.spawn("writer", move |ctx| {
        writer.write(ctx, loc, 10, 1);
        writer.retire(ctx, loc, 10);
    });
    sim.spawn("reader", move |ctx| {
        // Version 5 will never exist; the retirement must unblock us.
        let r = reader.wait_version(ctx, loc, 5);
        assert_eq!(r, Err(nscc_dsm::Retired));
    });
    sim.run().unwrap();
}

#[test]
fn writing_a_foreign_location_is_rejected() {
    let mut dir = Directory::new();
    let loc = dir.add("owned-by-zero", 0, [1]);
    let mut world: DsmWorld<u64> = ideal_world(2, dir);
    world.set_initial(loc, 0);
    let mut intruder = world.node(1);
    let mut sim = SimBuilder::new(0);
    sim.spawn("intruder", move |ctx| {
        intruder.write(ctx, loc, 1, 1); // panics: not the owner
    });
    match sim.run() {
        Err(nscc_sim::SimError::ProcessPanicked { message, .. }) => {
            assert!(message.contains("owned by rank"), "{message}");
        }
        other => panic!("expected ownership panic, got {other:?}"),
    }
}

#[test]
fn ring_topology_keeps_non_neighbors_unaware() {
    let ranks = 4;
    let mut dir = Directory::new();
    let locs = dir.add_ring("v", ranks);
    let mut world: DsmWorld<u64> = ideal_world(ranks, dir);
    for &l in &locs {
        world.set_initial(l, 0);
    }
    let mut writer = world.node(0);
    let neighbor = world.node(1);
    let opposite = world.node(2);
    let loc0 = locs[0];
    let mut sim = SimBuilder::new(0);
    sim.spawn("writer", move |ctx| {
        writer.write(ctx, loc0, 7, 1);
    });
    sim.spawn("observers", move |ctx| {
        ctx.advance(SimTime::from_millis(50));
        assert!(neighbor.is_reader(loc0));
        assert!(!opposite.is_reader(loc0));
    });
    sim.run().unwrap();
}

#[test]
fn write_coalescing_cuts_messages_and_respects_global_read() {
    // With k=4 coalescing, the writer propagates a quarter of the
    // updates; a reader tolerating age >= 4 never blocks longer than one
    // flush interval, and the staleness bound still holds.
    let run = |k: u64| {
        let mut dir = Directory::new();
        let loc = dir.add("x", 0, [1]);
        let mut world: DsmWorld<u64> = DsmWorld::new(
            Network::new(IdealMedium::new(SimTime::from_millis(1))),
            2,
            MsgConfig::default(),
            dir,
        )
        .with_coalescing(k);
        world.set_initial(loc, 0);
        let mut writer = world.node(0);
        let mut reader = world.node(1);
        let mut sim = SimBuilder::new(0);
        sim.spawn("writer", move |ctx| {
            for iter in 1..=40u64 {
                ctx.advance(SimTime::from_millis(2));
                writer.write(ctx, loc, iter, iter);
            }
            writer.retire(ctx, loc, 40);
        });
        sim.spawn("reader", move |ctx| {
            for iter in 1..=40u64 {
                ctx.advance(SimTime::from_millis(2));
                let (age, _) = reader.global_read(ctx, loc, iter, 8);
                assert!(
                    age >= iter.saturating_sub(8),
                    "bound violated at k-coalescing"
                );
            }
        });
        sim.run().unwrap();
        world.total_stats().updates_sent
    };
    let through = run(1);
    let coalesced = run(4);
    assert!(
        coalesced * 3 < through,
        "k=4 should send ~4x fewer updates ({coalesced} vs {through})"
    );
}
