//! Versioned JSON serialization for [`FaultPlan`] — the portable half of
//! the repro format shared by `nscc-hunt` repros and hand-written
//! `NSCC_FAULT_PLAN=<path>` plans.
//!
//! The writer emits one canonical compact document (every section
//! present, keys in declaration order) so byte-identical plans serialize
//! byte-identically; the reader is strict — unknown keys, wrong types,
//! fractional nanosecond fields and unsupported schema versions are all
//! hard errors — but tolerates *omitted* optional sections so short
//! hand-written plans stay short. Numbers are kept as raw text until a
//! typed accessor parses them, so 64-bit seeds survive the round trip
//! exactly (an `f64` intermediate would silently corrupt seeds above
//! 2^53 and break replay determinism).

use std::fmt::Write as _;

use nscc_sim::SimTime;

use crate::json::Value;
use crate::{CrashSchedule, DegradedWindow, FaultPlan, LinkFaults, PartitionWindow, StallWindow};

/// Schema version stamped into (and demanded from) every plan document.
pub const PLAN_SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn push_f64(out: &mut String, v: f64) {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        let _ = write!(out, "{}.0", v as i64);
    } else {
        let _ = write!(out, "{v:?}");
    }
}

fn push_link_faults(out: &mut String, f: &LinkFaults) {
    out.push_str("\"drop\":");
    push_f64(out, f.drop_prob);
    out.push_str(",\"dup\":");
    push_f64(out, f.dup_prob);
    out.push_str(",\"delay_prob\":");
    push_f64(out, f.delay_prob);
    let _ = write!(out, ",\"delay_max_ns\":{}", f.delay_max.as_nanos());
}

impl FaultPlan {
    /// Serialize the plan to its canonical compact JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"schema\":{PLAN_SCHEMA_VERSION},\"seed\":{},\"base\":{{",
            self.seed
        );
        push_link_faults(&mut out, &self.base);
        out.push_str("},\"links\":[");
        for (i, ((src, dst), f)) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"src\":{src},\"dst\":{dst},");
            push_link_faults(&mut out, f);
            out.push('}');
        }
        out.push_str("],\"degraded\":[");
        for (i, w) in self.degraded.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"from_ns\":{},\"until_ns\":{},\"extra_drop\":",
                w.from.as_nanos(),
                w.until.as_nanos()
            );
            push_f64(&mut out, w.extra_drop);
            let _ = write!(out, ",\"extra_delay_ns\":{}}}", w.extra_delay.as_nanos());
        }
        out.push_str("],\"crashes\":[");
        for (i, c) in self.crashes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"node\":{},\"at_ns\":{}", c.node, c.at.as_nanos());
            match c.restart {
                Some(r) => {
                    let _ = write!(out, ",\"restart_ns\":{}", r.as_nanos());
                }
                None => out.push_str(",\"restart_ns\":null"),
            }
            out.push('}');
        }
        out.push_str("],\"stalls\":[");
        for (i, s) in self.stalls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"node\":{},\"from_ns\":{},\"until_ns\":{}}}",
                s.node,
                s.from.as_nanos(),
                s.until.as_nanos()
            );
        }
        out.push_str("],\"partitions\":[");
        for (i, p) in self.partitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"from_ns\":{},\"until_ns\":{},\"group\":[",
                p.from.as_nanos(),
                p.until.as_nanos()
            );
            for (j, n) in p.group.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{n}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parse a plan from its JSON document. Strict: unsupported schema
    /// versions, unknown keys, wrong types and trailing garbage are all
    /// errors (callers honoring the NSCC_* convention exit 2 on `Err`).
    /// Optional sections (`base`, `links`, …) may be omitted entirely.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        FaultPlan::from_value(&Value::parse(text)?)
    }

    /// Parse a plan from an already-parsed JSON value — the entry point
    /// for documents that embed a plan object (the hunt repro format).
    pub fn from_value(doc: &Value) -> Result<FaultPlan, String> {
        let obj = doc.as_obj("plan")?;
        let mut plan = FaultPlan::default();
        let mut saw_schema = false;
        let mut saw_seed = false;
        for (key, value) in obj {
            match key.as_str() {
                "schema" => {
                    let v = value.as_u64("schema")?;
                    if v != PLAN_SCHEMA_VERSION {
                        return Err(format!(
                            "unsupported plan schema {v} (this build reads {PLAN_SCHEMA_VERSION})"
                        ));
                    }
                    saw_schema = true;
                }
                "seed" => {
                    plan.seed = value.as_u64("seed")?;
                    saw_seed = true;
                }
                "base" => plan.base = link_faults(value)?,
                "links" => {
                    for item in value.as_arr("links")? {
                        let o = item.as_obj("links entry")?;
                        let mut f = LinkFaults::default();
                        let mut src = None;
                        let mut dst = None;
                        for (k, v) in o {
                            match k.as_str() {
                                "src" => src = Some(v.as_u32("src")?),
                                "dst" => dst = Some(v.as_u32("dst")?),
                                _ => apply_link_fault_key(&mut f, k, v)?,
                            }
                        }
                        let src = src.ok_or("links entry missing `src`")?;
                        let dst = dst.ok_or("links entry missing `dst`")?;
                        plan.links.push(((src, dst), f.clamp()));
                    }
                }
                "degraded" => {
                    for item in value.as_arr("degraded")? {
                        let o = item.as_obj("degraded entry")?;
                        let mut w = DegradedWindow {
                            from: SimTime::ZERO,
                            until: SimTime::ZERO,
                            extra_drop: 0.0,
                            extra_delay: SimTime::ZERO,
                        };
                        for (k, v) in o {
                            match k.as_str() {
                                "from_ns" => w.from = v.as_time(k)?,
                                "until_ns" => w.until = v.as_time(k)?,
                                "extra_drop" => w.extra_drop = v.as_prob(k)?,
                                "extra_delay_ns" => w.extra_delay = v.as_time(k)?,
                                other => return Err(unknown_key("degraded", other)),
                            }
                        }
                        plan.degraded.push(w);
                    }
                }
                "crashes" => {
                    for item in value.as_arr("crashes")? {
                        let o = item.as_obj("crashes entry")?;
                        let mut c = CrashSchedule {
                            node: 0,
                            at: SimTime::ZERO,
                            restart: None,
                        };
                        for (k, v) in o {
                            match k.as_str() {
                                "node" => c.node = v.as_u32(k)?,
                                "at_ns" => c.at = v.as_time(k)?,
                                "restart_ns" => {
                                    c.restart = match v {
                                        Value::Null => None,
                                        other => Some(other.as_time(k)?),
                                    }
                                }
                                other => return Err(unknown_key("crashes", other)),
                            }
                        }
                        plan.crashes.push(c);
                    }
                }
                "stalls" => {
                    for item in value.as_arr("stalls")? {
                        let o = item.as_obj("stalls entry")?;
                        let mut s = StallWindow {
                            node: 0,
                            from: SimTime::ZERO,
                            until: SimTime::ZERO,
                        };
                        for (k, v) in o {
                            match k.as_str() {
                                "node" => s.node = v.as_u32(k)?,
                                "from_ns" => s.from = v.as_time(k)?,
                                "until_ns" => s.until = v.as_time(k)?,
                                other => return Err(unknown_key("stalls", other)),
                            }
                        }
                        plan.stalls.push(s);
                    }
                }
                "partitions" => {
                    for item in value.as_arr("partitions")? {
                        let o = item.as_obj("partitions entry")?;
                        let mut p = PartitionWindow {
                            from: SimTime::ZERO,
                            until: SimTime::ZERO,
                            group: Vec::new(),
                        };
                        for (k, v) in o {
                            match k.as_str() {
                                "from_ns" => p.from = v.as_time(k)?,
                                "until_ns" => p.until = v.as_time(k)?,
                                "group" => {
                                    for n in v.as_arr("group")? {
                                        p.group.push(n.as_u32("group member")?);
                                    }
                                }
                                other => return Err(unknown_key("partitions", other)),
                            }
                        }
                        plan.partitions.push(p);
                    }
                }
                other => return Err(unknown_key("plan", other)),
            }
        }
        if !saw_schema {
            return Err("plan missing `schema`".into());
        }
        if !saw_seed {
            return Err("plan missing `seed`".into());
        }
        Ok(plan)
    }

    /// Read a plan from a JSON file (the `NSCC_FAULT_PLAN` loader).
    pub fn load(path: &std::path::Path) -> Result<FaultPlan, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        FaultPlan::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn link_faults(value: &Value) -> Result<LinkFaults, String> {
    let mut f = LinkFaults::default();
    for (k, v) in value.as_obj("link faults")? {
        apply_link_fault_key(&mut f, k, v)?;
    }
    Ok(f.clamp())
}

fn apply_link_fault_key(f: &mut LinkFaults, key: &str, v: &Value) -> Result<(), String> {
    match key {
        "drop" => f.drop_prob = v.as_prob(key)?,
        "dup" => f.dup_prob = v.as_prob(key)?,
        "delay_prob" => f.delay_prob = v.as_prob(key)?,
        "delay_max_ns" => f.delay_max = v.as_time(key)?,
        other => return Err(unknown_key("link faults", other)),
    }
    Ok(())
}

fn unknown_key(ctx: &str, key: &str) -> String {
    format!("unknown {ctx} key `{key}`")
}

// ---------------------------------------------------------------------
// Mutation hooks (the shrinker's substrate)
// ---------------------------------------------------------------------

impl FaultPlan {
    /// The same plan under a different seed (reseeding a shrunk plan
    /// must not resurrect removed events, so the seed is orthogonal).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The number of removable events the shrinker can enumerate: the
    /// base link faults (when non-noop), then every link override,
    /// degradation window, crash, stall and partition, in that order.
    pub fn events(&self) -> usize {
        usize::from(!self.base.is_noop())
            + self.links.len()
            + self.degraded.len()
            + self.crashes.len()
            + self.stalls.len()
            + self.partitions.len()
    }

    /// One human label per removable event (shrink logs), indexed like
    /// [`without_event`](FaultPlan::without_event).
    pub fn event_label(&self, idx: usize) -> String {
        let mut i = idx;
        if !self.base.is_noop() {
            if i == 0 {
                return format!(
                    "base loss={} dup={} delay={}",
                    self.base.drop_prob, self.base.dup_prob, self.base.delay_prob
                );
            }
            i -= 1;
        }
        if i < self.links.len() {
            let ((s, d), _) = &self.links[i];
            return format!("link {s}->{d} override");
        }
        i -= self.links.len();
        if i < self.degraded.len() {
            let w = &self.degraded[i];
            return format!("degraded window [{}, {})", w.from, w.until);
        }
        i -= self.degraded.len();
        if i < self.crashes.len() {
            let c = &self.crashes[i];
            return match c.restart {
                Some(r) => format!("crash node {} at {} restart {}", c.node, c.at, r),
                None => format!("crash node {} at {}", c.node, c.at),
            };
        }
        i -= self.crashes.len();
        if i < self.stalls.len() {
            let s = &self.stalls[i];
            return format!("stall node {} [{}, {})", s.node, s.from, s.until);
        }
        i -= self.stalls.len();
        if i < self.partitions.len() {
            let p = &self.partitions[i];
            return format!("partition {:?} [{}, {})", p.group, p.from, p.until);
        }
        format!("event #{idx} (out of range)")
    }

    /// The plan with removable event `idx` deleted, or `None` when `idx`
    /// is out of range. Event order matches [`events`](FaultPlan::events).
    pub fn without_event(&self, idx: usize) -> Option<FaultPlan> {
        if idx >= self.events() {
            return None;
        }
        let mut plan = self.clone();
        let mut i = idx;
        if !self.base.is_noop() {
            if i == 0 {
                plan.base = LinkFaults::default();
                return Some(plan);
            }
            i -= 1;
        }
        if i < plan.links.len() {
            plan.links.remove(i);
            return Some(plan);
        }
        i -= plan.links.len();
        if i < plan.degraded.len() {
            plan.degraded.remove(i);
            return Some(plan);
        }
        i -= plan.degraded.len();
        if i < plan.crashes.len() {
            plan.crashes.remove(i);
            return Some(plan);
        }
        i -= plan.crashes.len();
        if i < plan.stalls.len() {
            plan.stalls.remove(i);
            return Some(plan);
        }
        i -= plan.stalls.len();
        plan.partitions.remove(i);
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_plan() -> FaultPlan {
        FaultPlan::new(u64::MAX - 3)
            .loss(0.01)
            .duplication(0.002)
            .delay(0.05, SimTime::from_millis(5))
            .link(
                0,
                1,
                LinkFaults {
                    drop_prob: 1.0,
                    ..LinkFaults::default()
                },
            )
            .degrade(
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                0.5,
                SimTime::from_millis(50),
            )
            .crash(2, SimTime::from_secs(10))
            .crash_and_restart(1, SimTime::from_secs(3), SimTime::from_secs(4))
            .stall(3, SimTime::ZERO, SimTime::from_secs(1))
            .partition(SimTime::from_secs(5), SimTime::from_secs(6), [0, 1])
    }

    #[test]
    fn round_trip_preserves_the_plan_exactly() {
        let plan = rich_plan();
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).unwrap();
        assert_eq!(back, plan);
        // Canonical form: serializing again is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn seeds_above_2_pow_53_survive() {
        let plan = FaultPlan::new(u64::MAX).loss(0.1);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back.seed(), u64::MAX);
    }

    #[test]
    fn empty_plan_round_trips() {
        let plan = FaultPlan::new(7);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        assert!(back.is_noop());
    }

    #[test]
    fn omitted_sections_default_empty() {
        let plan = FaultPlan::from_json(r#"{"schema":1,"seed":9}"#).unwrap();
        assert_eq!(plan.seed(), 9);
        assert!(plan.is_noop());
        let plan = FaultPlan::from_json(r#"{"schema":1,"seed":9,"base":{"drop":0.25}}"#).unwrap();
        assert_eq!(plan, FaultPlan::new(9).loss(0.25));
    }

    #[test]
    fn strict_parser_rejects_bad_documents() {
        for (doc, why) in [
            ("", "empty"),
            ("{", "truncated"),
            (r#"{"seed":1}"#, "missing schema"),
            (r#"{"schema":1}"#, "missing seed"),
            (r#"{"schema":2,"seed":1}"#, "future schema"),
            (r#"{"schema":1,"seed":-1}"#, "negative seed"),
            (r#"{"schema":1,"seed":1,"bogus":0}"#, "unknown key"),
            (r#"{"schema":1,"seed":1,"base":{"drop":1.5}}"#, "prob > 1"),
            (r#"{"schema":1,"seed":1,"base":{"dorp":0.1}}"#, "typo key"),
            (
                r#"{"schema":1,"seed":1,"crashes":[{"at_ns":5}]}"#,
                "crash missing node is fine, node defaults",
            ),
            (r#"{"schema":1,"seed":1} trailing"#, "trailing garbage"),
            (
                r#"{"schema":1,"seed":1,"stalls":[{"node":0,"from_ns":1.5,"until_ns":2}]}"#,
                "fractional ns",
            ),
        ] {
            if why.contains("is fine") {
                assert!(FaultPlan::from_json(doc).is_ok(), "{why}: {doc}");
            } else {
                assert!(FaultPlan::from_json(doc).is_err(), "{why}: {doc}");
            }
        }
    }

    #[test]
    fn event_enumeration_covers_every_section() {
        let plan = rich_plan();
        // base + 1 link + 1 degraded + 2 crashes + 1 stall + 1 partition.
        assert_eq!(plan.events(), 7);
        for i in 0..plan.events() {
            let shrunk = plan.without_event(i).unwrap();
            assert_eq!(shrunk.events(), plan.events() - 1, "event {i}");
            assert_ne!(shrunk, plan);
            assert!(!plan.event_label(i).contains("out of range"));
        }
        assert!(plan.without_event(plan.events()).is_none());
    }

    #[test]
    fn removing_every_event_yields_a_noop_plan() {
        let mut plan = rich_plan();
        while plan.events() > 0 {
            plan = plan.without_event(0).unwrap();
        }
        assert!(plan.is_noop());
        assert_eq!(plan.seed(), rich_plan().seed(), "seed is not an event");
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let plan = rich_plan();
        let reseeded = plan.clone().with_seed(123);
        assert_eq!(reseeded.seed(), 123);
        assert_eq!(reseeded.events(), plan.events());
        assert_eq!(reseeded.crashes(), plan.crashes());
    }

    #[test]
    fn load_reports_the_path_on_malformed_files() {
        let dir = std::env::temp_dir().join(format!("nscc-plan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(&good, rich_plan().to_json()).unwrap();
        assert_eq!(FaultPlan::load(&good).unwrap(), rich_plan());
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{not json").unwrap();
        let err = FaultPlan::load(&bad).unwrap_err();
        assert!(err.contains("bad.json"), "{err}");
        let missing = FaultPlan::load(&dir.join("absent.json")).unwrap_err();
        assert!(missing.contains("absent.json"), "{missing}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
