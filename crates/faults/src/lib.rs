//! # nscc-faults — deterministic fault injection for the NSCC stack
//!
//! The simulated platform is implausibly kind: every frame arrives exactly
//! once and no node ever dies. This crate makes it hostile — on purpose,
//! deterministically. A [`FaultPlan`] is a seeded, virtual-time schedule of
//! adversities:
//!
//! * per-link message **loss**, **duplication** and **extra delay**
//!   (reordering) probabilities, with per-link overrides;
//! * transient **degradation windows** (extra loss + latency for a while);
//! * node **stall** windows and **crash**(-and-restart) schedules
//!   (fail-silent: frames to/from a dead node vanish);
//! * network **partitions** with heal times.
//!
//! The plan is applied as [`FaultyMedium`], a [`Medium`] wrapper, so
//! `EthernetBus`, `Sp2Switch` and `IdealMedium` compose with it unchanged:
//! the inner medium still computes arrival times (and sees the wire
//! occupied even by frames that are then lost); the wrapper only attaches
//! a delivery [`Verdict`]. Determinism is total — the same plan seed over
//! the same traffic sequence produces the same faults.
//!
//! ```
//! use nscc_faults::{FaultPlan, FaultyMedium};
//! use nscc_net::{IdealMedium, Medium, NodeId, Verdict};
//! use nscc_sim::SimTime;
//!
//! let plan = FaultPlan::new(7).loss(0.5);
//! let mut m = FaultyMedium::new(IdealMedium::new(SimTime::from_millis(1)), plan);
//! let mut dropped = 0;
//! for _ in 0..100 {
//!     let tx = m.plan_transmit(SimTime::ZERO, NodeId(0), NodeId(1), 64);
//!     if matches!(tx.verdict, Verdict::Drop(_)) {
//!         dropped += 1;
//!     }
//! }
//! assert!(dropped > 20 && dropped < 80);
//! ```

#![warn(missing_docs)]

pub mod json;
mod plan_json;

pub use plan_json::PLAN_SCHEMA_VERSION;

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use nscc_net::{DropReason, Medium, MediumStats, NodeId, Transmission, Verdict};
use nscc_sim::{SimError, SimTime};

/// Per-link fault probabilities.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability a frame is silently lost.
    pub drop_prob: f64,
    /// Probability a delivered frame arrives twice.
    pub dup_prob: f64,
    /// Probability a delivered frame gets extra delay (reordering).
    pub delay_prob: f64,
    /// Upper bound of the extra delay drawn when `delay_prob` fires.
    pub delay_max: SimTime,
}

impl LinkFaults {
    fn clamp(mut self) -> Self {
        self.drop_prob = self.drop_prob.clamp(0.0, 1.0);
        self.dup_prob = self.dup_prob.clamp(0.0, 1.0);
        self.delay_prob = self.delay_prob.clamp(0.0, 1.0);
        self
    }

    fn is_noop(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0 && self.delay_prob == 0.0
    }
}

/// A transient all-links degradation window: extra loss and latency
/// between `from` (inclusive) and `until` (exclusive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Loss probability added on top of the per-link probability.
    pub extra_drop: f64,
    /// Latency added to every frame in the window.
    pub extra_delay: SimTime,
}

/// A node crash: fail-silent from `at` until `restart` (forever if
/// `None`). Frames to or from a crashed node are dropped; the simulated
/// process itself keeps running blind (its sends vanish), which is exactly
/// how a fail-silent peer looks from the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSchedule {
    /// The crashed node.
    pub node: u32,
    /// Crash instant (inclusive).
    pub at: SimTime,
    /// Optional restart instant (exclusive end of the outage).
    pub restart: Option<SimTime>,
}

/// A node stall window: frames to/from the node are held and arrive no
/// earlier than `until` (a GC pause / overloaded peer, not a death).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// The stalled node.
    pub node: u32,
    /// Stall start (inclusive).
    pub from: SimTime,
    /// Stall end: held frames arrive at or after this instant.
    pub until: SimTime,
}

/// A network partition window: frames crossing between `group` and the
/// rest of the nodes are dropped between `from` and `until` (heal time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Heal instant (exclusive).
    pub until: SimTime,
    /// One side of the partition; everything else is the other side.
    pub group: Vec<u32>,
}

/// A seeded, virtual-time fault schedule. Build with the chained DSL:
///
/// ```
/// use nscc_faults::FaultPlan;
/// use nscc_sim::SimTime;
///
/// let plan = FaultPlan::new(42)
///     .loss(0.01)
///     .duplication(0.002)
///     .delay(0.05, SimTime::from_millis(5))
///     .crash(2, SimTime::from_secs(10))
///     .partition(SimTime::from_secs(3), SimTime::from_secs(4), [0, 1]);
/// assert!(!plan.is_noop());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    base: LinkFaults,
    links: Vec<((u32, u32), LinkFaults)>,
    degraded: Vec<DegradedWindow>,
    crashes: Vec<CrashSchedule>,
    stalls: Vec<StallWindow>,
    partitions: Vec<PartitionWindow>,
}

impl FaultPlan {
    /// An empty plan whose randomness derives entirely from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Set the loss probability on every link.
    pub fn loss(mut self, p: f64) -> Self {
        self.base.drop_prob = p;
        self.base = self.base.clamp();
        self
    }

    /// Set the duplication probability on every link.
    pub fn duplication(mut self, p: f64) -> Self {
        self.base.dup_prob = p;
        self.base = self.base.clamp();
        self
    }

    /// With probability `p`, add a uniform extra delay in `[0, max]` to a
    /// frame (the reordering knob: delayed frames overtake one another).
    pub fn delay(mut self, p: f64, max: SimTime) -> Self {
        self.base.delay_prob = p;
        self.base.delay_max = max;
        self.base = self.base.clamp();
        self
    }

    /// Override the fault probabilities of one directed link.
    pub fn link(mut self, src: u32, dst: u32, faults: LinkFaults) -> Self {
        self.links.push(((src, dst), faults.clamp()));
        self
    }

    /// Add a transient all-links degradation window.
    pub fn degrade(
        mut self,
        from: SimTime,
        until: SimTime,
        extra_drop: f64,
        extra_delay: SimTime,
    ) -> Self {
        self.degraded.push(DegradedWindow {
            from,
            until,
            extra_drop: extra_drop.clamp(0.0, 1.0),
            extra_delay,
        });
        self
    }

    /// Crash `node` at `at`, permanently.
    pub fn crash(mut self, node: u32, at: SimTime) -> Self {
        self.crashes.push(CrashSchedule {
            node,
            at,
            restart: None,
        });
        self
    }

    /// Crash `node` at `at` and bring it back at `restart`.
    pub fn crash_and_restart(mut self, node: u32, at: SimTime, restart: SimTime) -> Self {
        self.crashes.push(CrashSchedule {
            node,
            at,
            restart: Some(restart),
        });
        self
    }

    /// Stall `node` between `from` and `until` (its frames are held, not
    /// lost).
    pub fn stall(mut self, node: u32, from: SimTime, until: SimTime) -> Self {
        self.stalls.push(StallWindow { node, from, until });
        self
    }

    /// Partition `group` away from every other node between `from` and
    /// `until`.
    pub fn partition(
        mut self,
        from: SimTime,
        until: SimTime,
        group: impl IntoIterator<Item = u32>,
    ) -> Self {
        self.partitions.push(PartitionWindow {
            from,
            until,
            group: group.into_iter().collect(),
        });
        self
    }

    /// True when the plan injects nothing (a wrapped medium behaves
    /// identically to the bare one).
    pub fn is_noop(&self) -> bool {
        self.base.is_noop()
            && self.links.iter().all(|(_, f)| f.is_noop())
            && self.degraded.is_empty()
            && self.crashes.is_empty()
            && self.stalls.is_empty()
            && self.partitions.is_empty()
    }

    /// The scheduled crash windows (recovery layers use these to plan
    /// checkpoint cadence and restart handling).
    pub fn crashes(&self) -> &[CrashSchedule] {
        &self.crashes
    }

    /// Whether `node` is crashed at virtual time `t`.
    pub fn crashed(&self, node: u32, t: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && t >= c.at && c.restart.map_or(true, |r| t < r))
    }

    /// Whether a `src → dst` frame crosses an active partition at `t`.
    pub fn partitioned(&self, src: u32, dst: u32, t: SimTime) -> bool {
        self.partitions
            .iter()
            .any(|p| t >= p.from && t < p.until && p.group.contains(&src) != p.group.contains(&dst))
    }

    /// The effective per-link faults for `src → dst` at `t` (link override
    /// or the base, plus any degradation window in force).
    pub fn effective(&self, src: u32, dst: u32, t: SimTime) -> LinkFaults {
        let mut f = self
            .links
            .iter()
            .find(|((s, d), _)| *s == src && *d == dst)
            .map(|(_, f)| *f)
            .unwrap_or(self.base);
        for w in &self.degraded {
            if t >= w.from && t < w.until {
                f.drop_prob = (f.drop_prob + w.extra_drop).min(1.0);
            }
        }
        f
    }

    /// Extra latency from degradation windows in force at `t`.
    fn degraded_delay(&self, t: SimTime) -> SimTime {
        let mut extra = SimTime::ZERO;
        for w in &self.degraded {
            if t >= w.from && t < w.until {
                extra = extra.saturating_add(w.extra_delay);
            }
        }
        extra
    }

    /// The earliest instant a frame touching `node` at `t` may arrive
    /// (stall windows hold frames).
    fn stall_floor(&self, node: u32, t: SimTime) -> Option<SimTime> {
        self.stalls
            .iter()
            .filter(|s| s.node == node && t >= s.from && t < s.until)
            .map(|s| s.until)
            .max()
    }

    /// One human line summarizing the plan (for banners and reports).
    pub fn describe(&self) -> String {
        format!(
            "seed={} loss={} dup={} delay={}@{} links={} degraded={} crashes={} stalls={} partitions={}",
            self.seed,
            self.base.drop_prob,
            self.base.dup_prob,
            self.base.delay_prob,
            self.base.delay_max,
            self.links.len(),
            self.degraded.len(),
            self.crashes.len(),
            self.stalls.len(),
            self.partitions.len(),
        )
    }
}

/// Counters of every fault the wrapper injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Frames dropped by random loss.
    pub drops_loss: u64,
    /// Frames dropped because an endpoint was crashed.
    pub drops_node_down: u64,
    /// Frames dropped by an active partition.
    pub drops_partition: u64,
    /// Spurious duplicate deliveries injected.
    pub duplicates: u64,
    /// Frames given extra (reordering) delay.
    pub delayed: u64,
    /// Frames held by a stall window.
    pub stalled: u64,
}

impl FaultStats {
    /// All drops, regardless of cause.
    pub fn total_drops(&self) -> u64 {
        self.drops_loss + self.drops_node_down + self.drops_partition
    }
}

/// A cloneable handle to a [`FaultyMedium`]'s counters, readable after
/// (or during) a run even though the medium itself is owned by the
/// network.
#[derive(Debug, Clone, Default)]
pub struct FaultStatsHandle {
    inner: Arc<Mutex<FaultStats>>,
}

impl FaultStatsHandle {
    /// Snapshot of the counters.
    pub fn snapshot(&self) -> FaultStats {
        *self.inner.lock()
    }
}

/// A [`Medium`] wrapper that applies a [`FaultPlan`] to every frame. The
/// inner medium keeps full authority over timing and contention (lost
/// frames still occupied the wire); the wrapper decides delivery.
///
/// Broadcast capability is deliberately masked (`transmit_broadcast`
/// returns `None`) so multicasts fall back to unicast fan-out and every
/// link gets an independent verdict.
pub struct FaultyMedium {
    inner: Box<dyn Medium>,
    plan: FaultPlan,
    rng: StdRng,
    stats: FaultStatsHandle,
}

impl FaultyMedium {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: impl Medium + 'static, plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed ^ 0xFA17_FA17_FA17_FA17);
        FaultyMedium {
            inner: Box::new(inner),
            plan,
            rng,
            stats: FaultStatsHandle::default(),
        }
    }

    /// Like [`new`](FaultyMedium::new), but wrapping an already-boxed
    /// medium (what platform builders hold).
    pub fn wrap(inner: Box<dyn Medium>, plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed ^ 0xFA17_FA17_FA17_FA17);
        FaultyMedium {
            inner,
            plan,
            rng,
            stats: FaultStatsHandle::default(),
        }
    }

    /// A handle to this medium's fault counters.
    pub fn stats_handle(&self) -> FaultStatsHandle {
        self.stats.clone()
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl Medium for FaultyMedium {
    fn transmit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
    ) -> SimTime {
        self.plan_transmit(now, src, dst, payload_bytes).arrival
    }

    fn plan_transmit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
    ) -> Transmission {
        // The wire is occupied regardless of the frame's fate: a frame
        // lost downstream still consumed bandwidth and created contention.
        let mut arrival = self.inner.transmit(now, src, dst, payload_bytes);
        // Everything this layer adds on top of the healthy medium's
        // arrival is booked as injected fault delay.
        let baseline = arrival;

        // Stalled endpoints hold the frame until the window ends.
        let floor = self
            .plan
            .stall_floor(src.0, now)
            .into_iter()
            .chain(self.plan.stall_floor(dst.0, now))
            .max();
        if let Some(f) = floor {
            if f > arrival {
                arrival = f;
                self.stats.inner.lock().stalled += 1;
            }
        }

        // Crashed endpoints are fail-silent.
        if self.plan.crashed(src.0, now) || self.plan.crashed(dst.0, now) {
            self.stats.inner.lock().drops_node_down += 1;
            return Transmission {
                arrival,
                verdict: Verdict::Drop(DropReason::NodeDown),
                fault: arrival - baseline,
            };
        }

        // Partitions drop crossing frames until they heal.
        if self.plan.partitioned(src.0, dst.0, now) {
            self.stats.inner.lock().drops_partition += 1;
            return Transmission {
                arrival,
                verdict: Verdict::Drop(DropReason::Partitioned),
                fault: arrival - baseline,
            };
        }

        let f = self.plan.effective(src.0, dst.0, now);
        arrival = arrival.saturating_add(self.plan.degraded_delay(now));

        if f.drop_prob > 0.0 && self.rng.gen_bool(f.drop_prob) {
            self.stats.inner.lock().drops_loss += 1;
            return Transmission {
                arrival,
                verdict: Verdict::Drop(DropReason::Loss),
                fault: arrival - baseline,
            };
        }

        if f.delay_prob > 0.0 && self.rng.gen_bool(f.delay_prob) {
            let extra = self.rng.gen_range(0..=f.delay_max.as_nanos());
            arrival = arrival.saturating_add(SimTime::from_nanos(extra));
            self.stats.inner.lock().delayed += 1;
        }

        if f.dup_prob > 0.0 && self.rng.gen_bool(f.dup_prob) {
            let gap = SimTime::from_micros(self.rng.gen_range(20..400));
            self.stats.inner.lock().duplicates += 1;
            return Transmission {
                arrival,
                verdict: Verdict::Duplicate {
                    second: arrival.saturating_add(gap),
                },
                fault: arrival - baseline,
            };
        }

        Transmission {
            arrival,
            verdict: Verdict::Deliver,
            fault: arrival - baseline,
        }
    }

    fn transmit_broadcast(
        &mut self,
        _now: SimTime,
        _src: NodeId,
        _payload_bytes: usize,
    ) -> Option<SimTime> {
        // Mask hardware broadcast so every destination link gets its own
        // independent verdict via unicast fan-out.
        None
    }

    fn stats(&self) -> MediumStats {
        self.inner.stats()
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        self.inner.next_free(now)
    }
}

/// One blocked process's diagnostics inside a [`FaultReport`].
#[derive(Debug, Clone, Serialize)]
pub struct BlockedDiag {
    /// Process name.
    pub name: String,
    /// What it was waiting on.
    pub reason: String,
    /// Virtual time it blocked at.
    pub since: SimTime,
    /// Last virtual instant it made progress.
    pub last_progress: SimTime,
    /// Messages queued in its mailbox when the run died, if probed.
    pub mailbox_depth: Option<usize>,
}

/// A structured record of a run that died under injected faults: the
/// sim-level watchdog converts would-be deadlocks (and watchdog horizon
/// hits) into one of these instead of a fatal error, so chaos sweeps can
/// report "sync collapsed here" as data.
#[derive(Debug, Clone, Serialize)]
pub struct FaultReport {
    /// The fault plan's seed (reproduces the run).
    pub seed: u64,
    /// Virtual time of death.
    pub at: SimTime,
    /// Cause: `deadlock`, `time_limit`, `event_limit`, or `panic`.
    pub cause: String,
    /// Human-readable summary line.
    pub detail: String,
    /// The reliable layer's retransmit backoff ceiling in nanoseconds,
    /// when the run used one (`ReliableConfig::max_rto`). A report whose
    /// `at` dwarfs this cap means the transport kept retrying on schedule
    /// and the run still died — the failure is not a backoff runaway.
    pub rto_cap_ns: Option<u64>,
    /// Per-process diagnostics (deadlocks only).
    pub blocked: Vec<BlockedDiag>,
}

impl FaultReport {
    /// Build a report from the [`SimError`] that killed a run.
    pub fn from_sim_error(seed: u64, err: &SimError) -> Self {
        match err {
            SimError::Deadlock { at, blocked, notes } => FaultReport {
                seed,
                at: *at,
                cause: "deadlock".into(),
                detail: if notes.is_empty() {
                    format!("{} process(es) blocked with no future event", blocked.len())
                } else {
                    format!(
                        "{} process(es) blocked with no future event; {}",
                        blocked.len(),
                        notes.join("; ")
                    )
                },
                rto_cap_ns: None,
                blocked: blocked
                    .iter()
                    .map(|b| BlockedDiag {
                        name: b.name.clone(),
                        reason: b.reason.clone(),
                        since: b.since,
                        last_progress: b.last_progress,
                        mailbox_depth: b.mailbox_depth,
                    })
                    .collect(),
            },
            SimError::TimeLimitExceeded { limit } => FaultReport {
                seed,
                at: *limit,
                cause: "time_limit".into(),
                detail: format!("watchdog horizon {limit} exceeded"),
                rto_cap_ns: None,
                blocked: Vec::new(),
            },
            SimError::EventLimitExceeded { limit } => FaultReport {
                seed,
                at: SimTime::ZERO,
                cause: "event_limit".into(),
                detail: format!("event cap {limit} exceeded"),
                rto_cap_ns: None,
                blocked: Vec::new(),
            },
            SimError::ProcessPanicked { name, message, .. } => FaultReport {
                seed,
                at: SimTime::ZERO,
                cause: "panic".into(),
                detail: format!("process `{name}` panicked: {message}"),
                rto_cap_ns: None,
                blocked: Vec::new(),
            },
        }
    }

    /// Stamp the transport's retransmit backoff ceiling onto the report
    /// (see [`rto_cap_ns`](FaultReport::rto_cap_ns)).
    pub fn with_rto_cap(mut self, cap: Option<SimTime>) -> Self {
        self.rto_cap_ns = cap.map(|c| c.as_nanos());
        self
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "fault report (seed {}): {} at t={} — {}",
            self.seed, self.cause, self.at, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscc_net::IdealMedium;

    fn ideal() -> IdealMedium {
        IdealMedium::new(SimTime::from_millis(1))
    }

    #[test]
    fn noop_plan_is_transparent() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_noop());
        let mut m = FaultyMedium::new(ideal(), plan);
        for i in 0..50 {
            let t = SimTime::from_millis(i);
            let tx = m.plan_transmit(t, NodeId(0), NodeId(1), 100);
            assert_eq!(tx.arrival, t + SimTime::from_millis(1));
            assert_eq!(tx.verdict, Verdict::Deliver);
        }
        assert_eq!(m.stats_handle().snapshot(), FaultStats::default());
    }

    #[test]
    fn loss_is_seeded_and_deterministic() {
        let verdicts = |seed: u64| -> Vec<bool> {
            let mut m = FaultyMedium::new(ideal(), FaultPlan::new(seed).loss(0.3));
            (0..200)
                .map(|_| {
                    matches!(
                        m.plan_transmit(SimTime::ZERO, NodeId(0), NodeId(1), 64)
                            .verdict,
                        Verdict::Drop(_)
                    )
                })
                .collect()
        };
        assert_eq!(verdicts(5), verdicts(5));
        assert_ne!(verdicts(5), verdicts(6));
        let drops = verdicts(5).iter().filter(|&&d| d).count();
        assert!((20..=100).contains(&drops), "drops {drops}");
    }

    #[test]
    fn crash_drops_frames_both_ways_until_restart() {
        let plan =
            FaultPlan::new(0).crash_and_restart(1, SimTime::from_secs(1), SimTime::from_secs(2));
        let mut m = FaultyMedium::new(ideal(), plan);
        let alive = SimTime::from_millis(500);
        let dead = SimTime::from_millis(1500);
        let back = SimTime::from_millis(2500);
        assert_eq!(
            m.plan_transmit(alive, NodeId(0), NodeId(1), 64).verdict,
            Verdict::Deliver
        );
        assert_eq!(
            m.plan_transmit(dead, NodeId(0), NodeId(1), 64).verdict,
            Verdict::Drop(DropReason::NodeDown)
        );
        assert_eq!(
            m.plan_transmit(dead, NodeId(1), NodeId(0), 64).verdict,
            Verdict::Drop(DropReason::NodeDown)
        );
        assert_eq!(
            m.plan_transmit(back, NodeId(0), NodeId(1), 64).verdict,
            Verdict::Deliver
        );
        assert_eq!(m.stats_handle().snapshot().drops_node_down, 2);
    }

    #[test]
    fn partition_drops_only_crossing_frames() {
        let plan = FaultPlan::new(0).partition(SimTime::ZERO, SimTime::from_secs(1), [0, 1]);
        let mut m = FaultyMedium::new(ideal(), plan);
        let t = SimTime::from_millis(10);
        assert_eq!(
            m.plan_transmit(t, NodeId(0), NodeId(1), 64).verdict,
            Verdict::Deliver,
            "same side"
        );
        assert_eq!(
            m.plan_transmit(t, NodeId(0), NodeId(2), 64).verdict,
            Verdict::Drop(DropReason::Partitioned)
        );
        assert_eq!(
            m.plan_transmit(t, NodeId(2), NodeId(3), 64).verdict,
            Verdict::Deliver,
            "other side internal"
        );
        // After the heal everything flows again.
        assert_eq!(
            m.plan_transmit(SimTime::from_secs(2), NodeId(0), NodeId(2), 64)
                .verdict,
            Verdict::Deliver
        );
    }

    #[test]
    fn stall_holds_frames_until_window_end() {
        let plan = FaultPlan::new(0).stall(1, SimTime::ZERO, SimTime::from_secs(1));
        let mut m = FaultyMedium::new(ideal(), plan);
        let tx = m.plan_transmit(SimTime::from_millis(10), NodeId(0), NodeId(1), 64);
        assert_eq!(tx.arrival, SimTime::from_secs(1));
        assert_eq!(tx.verdict, Verdict::Deliver);
        // After the window, normal latency again.
        let tx = m.plan_transmit(SimTime::from_secs(3), NodeId(0), NodeId(1), 64);
        assert_eq!(tx.arrival, SimTime::from_secs(3) + SimTime::from_millis(1));
    }

    #[test]
    fn degradation_window_adds_loss_and_latency() {
        let plan = FaultPlan::new(9).degrade(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            1.0,
            SimTime::from_millis(50),
        );
        let mut m = FaultyMedium::new(ideal(), plan);
        let inside = m.plan_transmit(SimTime::from_millis(1500), NodeId(0), NodeId(1), 64);
        assert!(matches!(inside.verdict, Verdict::Drop(DropReason::Loss)));
        assert_eq!(
            inside.arrival,
            SimTime::from_millis(1500) + SimTime::from_millis(51)
        );
        let outside = m.plan_transmit(SimTime::from_millis(2500), NodeId(0), NodeId(1), 64);
        assert_eq!(outside.verdict, Verdict::Deliver);
    }

    #[test]
    fn injected_delay_is_booked_as_fault() {
        // Clean path: the fault share of the arrival is zero, so the
        // staleness tracer books the whole delay as transit.
        let mut clean = FaultyMedium::new(ideal(), FaultPlan::new(1));
        let tx = clean.plan_transmit(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        assert_eq!(tx.fault, SimTime::ZERO);

        // Degraded window: exactly the injected extra latency is booked,
        // and `arrival - fault` recovers the healthy medium's arrival.
        let plan = FaultPlan::new(9).degrade(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            0.0,
            SimTime::from_millis(50),
        );
        let mut m = FaultyMedium::new(ideal(), plan);
        let now = SimTime::from_millis(1500);
        let tx = m.plan_transmit(now, NodeId(0), NodeId(1), 64);
        assert_eq!(tx.fault, SimTime::from_millis(50));
        assert_eq!(tx.arrival - tx.fault, now + SimTime::from_millis(1));
    }

    #[test]
    fn duplication_yields_two_arrivals() {
        let mut m = FaultyMedium::new(ideal(), FaultPlan::new(3).duplication(1.0));
        let tx = m.plan_transmit(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        match tx.verdict {
            Verdict::Duplicate { second } => assert!(second > tx.arrival),
            other => panic!("expected duplicate, got {other:?}"),
        }
        assert_eq!(m.stats_handle().snapshot().duplicates, 1);
    }

    #[test]
    fn broadcast_capability_is_masked() {
        let mut m = FaultyMedium::new(ideal(), FaultPlan::new(0).loss(0.1));
        assert!(m.transmit_broadcast(SimTime::ZERO, NodeId(0), 64).is_none());
    }

    #[test]
    fn per_link_override_beats_base() {
        let plan = FaultPlan::new(4).loss(0.0).link(
            0,
            1,
            LinkFaults {
                drop_prob: 1.0,
                ..LinkFaults::default()
            },
        );
        let mut m = FaultyMedium::new(ideal(), plan);
        assert!(matches!(
            m.plan_transmit(SimTime::ZERO, NodeId(0), NodeId(1), 64)
                .verdict,
            Verdict::Drop(DropReason::Loss)
        ));
        assert_eq!(
            m.plan_transmit(SimTime::ZERO, NodeId(1), NodeId(0), 64)
                .verdict,
            Verdict::Deliver,
            "reverse direction uses the base"
        );
    }

    #[test]
    fn describe_mentions_the_knobs() {
        let d = FaultPlan::new(11)
            .loss(0.25)
            .crash(3, SimTime::ZERO)
            .describe();
        assert!(d.contains("seed=11"));
        assert!(d.contains("loss=0.25"));
        assert!(d.contains("crashes=1"));
    }
}
