//! A minimal strict JSON reader shared by the portable documents this
//! project exchanges: fault plans ([`crate::FaultPlan::from_json`]) and
//! the `nscc hunt` repro envelope that embeds them.
//!
//! Deliberately small and strict — no external dependency, no lossy
//! number conversion. Numbers are kept as raw text ([`Value::Num`])
//! until a typed accessor parses them, so 64-bit seeds survive exactly
//! (an `f64` intermediate would silently corrupt values above 2^53 and
//! break replay determinism). Escapes beyond the common short forms are
//! rejected rather than guessed at.

use nscc_sim::SimTime;

/// A parsed JSON value. Object member order is preserved, letting strict
/// readers report the first unknown key deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw text; typed accessors parse it without an
    /// f64 detour.
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse one complete document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Reader {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.fail("trailing characters after the document"));
        }
        Ok(v)
    }

    /// The object members, or an error naming `what`.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, Value)], String> {
        match self {
            Value::Obj(members) => Ok(members),
            _ => Err(format!("{what} must be an object")),
        }
    }

    /// The array items, or an error naming `what`.
    pub fn as_arr(&self, what: &str) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => Err(format!("{what} must be an array")),
        }
    }

    /// The string payload, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(format!("{what} must be a string")),
        }
    }

    /// The boolean payload, or an error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("{what} must be true or false")),
        }
    }

    /// A non-negative integer; fractional or negative numbers are errors.
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Value::Num(text) => text
                .parse::<u64>()
                .map_err(|_| format!("{what} must be a non-negative integer (got {text})")),
            _ => Err(format!("{what} must be a number")),
        }
    }

    /// A non-negative integer that must also fit `u32`.
    pub fn as_u32(&self, what: &str) -> Result<u32, String> {
        let v = self.as_u64(what)?;
        u32::try_from(v).map_err(|_| format!("{what} out of range (got {v})"))
    }

    /// A `*_ns` field: whole nanoseconds as virtual time.
    pub fn as_time(&self, what: &str) -> Result<SimTime, String> {
        self.as_u64(what).map(SimTime::from_nanos)
    }

    /// A probability in `[0, 1]`.
    pub fn as_prob(&self, what: &str) -> Result<f64, String> {
        match self {
            Value::Num(text) => {
                let v = text
                    .parse::<f64>()
                    .map_err(|_| format!("{what} must be a number (got {text})"))?;
                if (0.0..=1.0).contains(&v) {
                    Ok(v)
                } else {
                    Err(format!("{what} must be a probability in [0, 1] (got {v})"))
                }
            }
            _ => Err(format!("{what} must be a number")),
        }
    }
}

/// Append `s` to `out` as a JSON string literal (the writer-side escape
/// counterpart of the reader above).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn fail(&self, message: &str) -> String {
        format!("invalid JSON at byte {}: {message}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.fail(&format!("unexpected character {:?}", c as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.pos += 1; // consume '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.fail("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.fail("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        _ => return Err(self.fail("unsupported escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.fail("control character in string")),
                Some(_) => {
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.fail("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.fail("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.fail("digit required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        Ok(Value::Num(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_and_round_trip() {
        let mut out = String::new();
        push_json_str(&mut out, "a \"b\"\n\t\\c");
        assert_eq!(out, r#""a \"b\"\n\t\\c""#);
        let back = Value::parse(&out).unwrap();
        assert_eq!(back.as_str("s").unwrap(), "a \"b\"\n\t\\c");
        // Other control characters escape as \u sequences on the way
        // out (the strict reader rejects them raw).
        let mut ctl = String::new();
        push_json_str(&mut ctl, "x\u{1}y");
        assert_eq!(ctl, r#""x\u0001y""#);
    }

    #[test]
    fn typed_accessors_name_the_field() {
        let doc = Value::parse(r#"{"a":true,"b":"x","n":3}"#).unwrap();
        let obj = doc.as_obj("doc").unwrap();
        assert!(obj[0].1.as_bool("a").unwrap());
        assert_eq!(obj[1].1.as_str("b").unwrap(), "x");
        assert_eq!(obj[2].1.as_u64("n").unwrap(), 3);
        let err = obj[0].1.as_u64("a").unwrap_err();
        assert!(err.contains('a'), "{err}");
    }
}
