//! A minimal strict JSON parser into an order-preserving tree.
//!
//! The workspace writes all machine-readable artifacts through the
//! hand-rolled serializer in `crates/obs` (RFC 8259-conformant, compact);
//! this is the matching reader. Object member order is preserved so
//! rendered output (tables, diffs) follows the writer's declaration
//! order, and numbers are held as `f64` — every quantity the exports
//! carry (virtual nanoseconds, counters, speedups) fits well inside the
//! 2^53 exact-integer range, except sentinel `u64::MAX` fields, which
//! only ever get compared against huge thresholds.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` on other kinds or missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Decode surrogate pairs; lone surrogates are
                            // replaced rather than rejected (the writer
                            // never emits them).
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("unparseable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let doc = r#"{"b":[1,2,{"x":null}],"a":{"k":"v"}}"#;
        let v = parse(doc).unwrap();
        let members = v.as_obj().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().get("k").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":1,}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn u64_accessor_rejects_fractions() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
