//! Post-hoc analysis of NSCC observability artifacts.
//!
//! The benchmark binaries (with `NSCC_JSON=1` / `NSCC_TRACE=1`) emit two
//! kinds of JSON artifact through the obs hub:
//!
//! - `BENCH_*.json` **run reports** — headline metrics, raw counters,
//!   log₂ histograms (staleness, block time, network delay), warp
//!   summary, and periodic metric snapshots on a virtual-time cadence;
//! - `TRACE_*.json` **event dumps** — the full structured event stream
//!   plus execution spans.
//!
//! This crate is the read side: the `nscc` binary loads those artifacts
//! and answers the questions the paper's evaluation keeps asking —
//!
//! - [`inspect`] — where did the time go? Per-process blocked-time
//!   attribution (compute vs `Global_Read` blocking vs barrier waits),
//!   the critical path through send/deliver edges, staleness CDFs,
//!   queue-depth and warp timelines.
//! - [`causal::why`] — *why* was a process blocked? Walks the causal
//!   dependency edges a v3 report carries: which writer's update to which
//!   location released each blocking `Global_Read`, with the queued /
//!   in-flight / retransmit-delayed breakdown of the releasing frames.
//! - [`causal::heat`] — where does staleness concentrate? Per-location
//!   staleness heatmaps rendered from the `obs.heat` section.
//! - [`diff`] — what changed between two runs (say `age=0` vs `age=20`)?
//!   Structured deltas of every metric, counter, histogram percentile,
//!   and the convergence-vs-virtual-time curve.
//! - [`gate`] — did this commit regress? Fresh reports vs checked-in
//!   `baselines/` with per-metric thresholds; nonzero exit on drift
//!   (wired into CI).
//! - [`inspect_ckpt_dir`] — what state is in a checkpoint store
//!   (`NSCC_CKPT_DIR`)? Generation listing with virtual cut times,
//!   sizes, checksums, per-node iteration vectors and corruption flags.
//! - [`top`] — what is the run doing *right now*? Tails the
//!   line-delimited `NSCC_LIVE` feed: per-snapshot rates, staleness and
//!   fault pressure, warp, and the scheduler's wall-clock
//!   self-accounting (`--once` renders a single deterministic frame).
//! - [`trend`] — is a metric drifting across commits? Ordered
//!   `BENCH_<name>.<seq>.json` trajectory series (committed under
//!   `runs/`) rendered as per-metric sparklines with rolling-median
//!   drift detection (`--check` turns drift into a CI failure).
//! - [`audit::audit`] — did the run uphold its coherence contract? The
//!   online monitor verdict an `NSCC_AUDIT=1` run stamps into its
//!   report: per-monitor check counts and every recorded violation.
//! - [`anatomy::anatomy`] — where did every nanosecond of staleness go?
//!   Renders the `staleness` section an `NSCC_STALENESS=1` run stamps:
//!   the observed-age distribution, the seven-stage decomposition ranked
//!   by total time, the top offending locations and links, and the
//!   conservation verdict (stage sums must equal observed ages exactly).
//! - [`drill::drill`] — did recovery actually work? Renders a report's
//!   `recovery` section (marker waves, consistent cuts, cut-served
//!   restores, supervisor restarts/retirements) and re-verifies the
//!   rollback-within-age-bound invariant from the report alone.
//! - [`postmortem`] — why did the run die? Reads the flight-recorder
//!   dump (`FLIGHT_*.json`, cut from the `NSCC_FLIGHT` event ring on a
//!   violation, fault, or deadlock): per-process last-events timelines
//!   plus suspected-cause heuristics over the captured window.
//!
//! The crate depends only on `nscc-ckpt` (itself std-only, for reading
//! checkpoint stores) and otherwise stays **dependency-free**: it parses
//! JSON with its own strict reader ([`json`]) and mirrors the writer-side
//! schema constants ([`report::SCHEMA_VERSION`]). That keeps the analyzer
//! buildable anywhere the toolchain exists, with no version skew against
//! the simulator it inspects beyond the schema number it checks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anatomy;
pub mod audit;
pub mod causal;
pub mod ckpt;
pub mod diff;
pub mod drill;
pub mod fmt;
pub mod gate;
pub mod hist;
pub mod inspect;
pub mod json;
pub mod postmortem;
pub mod report;
pub mod top;
pub mod trend;

pub use anatomy::anatomy;
pub use audit::audit;
pub use causal::{heat, why};
pub use ckpt::inspect_ckpt_dir;
pub use diff::diff;
pub use drill::drill;
pub use gate::{gate_all, gate_pair, update_baselines, GateConfig, Outcome};
pub use hist::HistView;
pub use inspect::inspect;
pub use postmortem::postmortem;
pub use report::{Report, SCHEMA_VERSION};
pub use top::{follow, parse_feed, top_file, FEED_VERSION};
pub use trend::{trend_dir, trend_files, TrendConfig};
