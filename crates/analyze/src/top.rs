//! `nscc top`: a dashboard over the `NSCC_LIVE` telemetry feed.
//!
//! The bench binaries, run with `NSCC_LIVE=<path|fd>`, stream one JSON
//! line per periodic metric snapshot (see `crates/obs/src/live.rs` for
//! the writer-side schema). This module is the read side: it parses the
//! line-delimited feed and renders a single text frame — the latest
//! snapshot's rates, the run's staleness/fault/retransmit picture, the
//! scheduler's wall-clock self-accounting, and per-snapshot sparkline
//! series.
//!
//! Two modes:
//!
//! - [`top_file`] (`nscc top --once`) reads the whole feed and renders
//!   one frame. Deterministic for a fixed feed, so it golden-tests.
//! - [`follow`] (`nscc top`) re-reads the feed on an interval and
//!   repaints until the `final` line appears — a `tail -f` for a run
//!   that is still going.
//!
//! Readers ignore unknown fields and unknown `kind`s (the feed grows
//! additively) but refuse a newer `feed_version`, mirroring the report
//! loader's stance: guessing at renamed fields silently mis-renders.

use std::collections::BTreeMap;
use std::path::Path;

use crate::fmt::{ns, num, spark};
use crate::json::{parse, Json};

/// The newest feed schema this dashboard understands. Must track
/// `nscc_obs::FEED_VERSION` (the analyzer is dependency-free by design,
/// so the constant is mirrored here; `tests/observability.rs` in the
/// workspace root pins the two together).
pub const FEED_VERSION: u64 = 1;

/// One parsed `kind:"snap"` feed line. The three sections are kept as
/// name → value maps so additive feed growth never breaks the reader.
#[derive(Debug, Clone, Default)]
pub struct Snap {
    /// Wall ns since the sink attached.
    pub wall_ns: u64,
    /// Virtual-over-wall speed ratio at this snapshot.
    pub warp: f64,
    /// The cumulative `MetricSnapshot` fields (`t_ns`, `reads`, …).
    pub snap: BTreeMap<String, f64>,
    /// Counter deltas since the previous snap line.
    pub delta: BTreeMap<String, f64>,
    /// Scheduler wall-clock accounting (`events_per_sec`, `parks`, …).
    pub sched: BTreeMap<String, f64>,
}

/// The parsed `kind:"final"` feed line.
#[derive(Debug, Clone, Default)]
pub struct Final {
    /// Wall ns from sink attach to run end.
    pub wall_ns: u64,
    /// The run's cumulative event counters (mirrors `HubSummary`).
    pub counters: BTreeMap<String, f64>,
    /// Final scheduler accounting totals.
    pub sched: BTreeMap<String, f64>,
}

/// A fully parsed live feed.
#[derive(Debug, Clone)]
pub struct Feed {
    /// Bench name from the `start` header.
    pub bench: String,
    /// The writer's feed version.
    pub feed_version: u64,
    /// The writer's report schema version.
    pub schema_version: u64,
    /// Snapshot cadence in virtual ns (0 = snapshots disabled).
    pub snap_every_ns: u64,
    /// Every `snap` line, in feed order.
    pub snaps: Vec<Snap>,
    /// The `final` line, once the run has ended.
    pub fin: Option<Final>,
    /// Lines skipped as unparseable or of unknown kind.
    pub skipped: usize,
    /// The feed ended mid-line (no trailing newline and the fragment
    /// does not parse): the writer was caught mid-append. Not an error
    /// and not an unrecognized line — the fragment completes on the next
    /// read.
    pub partial: bool,
}

/// The `parse_feed` error prefix for "no start header yet" — the writer
/// has not attached (or its first line is still being appended), which
/// callers treat as *waiting*, not failure.
const NO_START: &str = "no start line";

/// How many sparkline cells a series row gets at most; longer series are
/// bucket-averaged down so a frame stays terminal-width no matter how
/// many snapshots the run cut.
const SERIES_WIDTH: usize = 60;

/// Display rounding to 2 decimals (ratios, rates). Comparison-free —
/// purely cosmetic.
fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Average `values` into at most `width` buckets, NaN-aware: a bucket
/// with no finite values stays NaN (rendered as a gap by `spark`).
fn condense(values: &[f64], width: usize) -> Vec<f64> {
    if values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|b| {
            let lo = b * values.len() / width;
            let hi = ((b + 1) * values.len() / width).max(lo + 1);
            let finite: Vec<f64> = values[lo..hi]
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .collect();
            if finite.is_empty() {
                f64::NAN
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            }
        })
        .collect()
}

fn obj_nums(v: Option<&Json>) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(members) = v.and_then(Json::as_obj) {
        for (k, v) in members {
            if let Some(n) = v.as_f64() {
                out.insert(k.clone(), n);
            }
        }
    }
    out
}

/// Parse a complete feed text (all lines read so far). Unparseable lines
/// and unknown `kind`s are counted, not fatal — the writer may still be
/// appending, and the schema grows additively. A missing `start` header
/// or a too-new `feed_version` is fatal.
pub fn parse_feed(text: &str) -> Result<Feed, String> {
    let mut header: Option<(String, u64, u64, u64)> = None;
    let mut snaps = Vec::new();
    let mut fin = None;
    let mut skipped = 0usize;
    let mut partial = false;
    let terminated = text.is_empty() || text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // An unterminated last line is the writer caught mid-append; if
        // the fragment doesn't parse it is *in progress*, not garbage.
        let in_progress = !terminated && i == lines.len() - 1;
        let Ok(v) = parse(line) else {
            if in_progress {
                partial = true;
            } else {
                skipped += 1;
            }
            continue;
        };
        let Some(fv) = v.get("feed_version").and_then(Json::as_u64) else {
            if in_progress {
                partial = true;
            } else {
                skipped += 1;
            }
            continue;
        };
        if fv > FEED_VERSION {
            return Err(format!(
                "feed version {fv} but this nscc top understands only versions \
                 ..={FEED_VERSION}; upgrade nscc-analyze"
            ));
        }
        match v.get("kind").and_then(Json::as_str) {
            Some("start") => {
                header = Some((
                    v.get("bench")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    fv,
                    v.get("schema_version").and_then(Json::as_u64).unwrap_or(0),
                    v.get("snap_every_ns").and_then(Json::as_u64).unwrap_or(0),
                ));
            }
            Some("snap") => snaps.push(Snap {
                wall_ns: v.get("wall_ns").and_then(Json::as_u64).unwrap_or(0),
                warp: v.get("warp").and_then(Json::as_f64).unwrap_or(0.0),
                snap: obj_nums(v.get("snap")),
                delta: obj_nums(v.get("delta")),
                sched: obj_nums(v.get("sched")),
            }),
            Some("final") => {
                fin = Some(Final {
                    wall_ns: v.get("wall_ns").and_then(Json::as_u64).unwrap_or(0),
                    counters: obj_nums(v.get("counters")),
                    sched: obj_nums(v.get("sched")),
                })
            }
            _ => skipped += 1,
        }
    }
    let Some((bench, feed_version, schema_version, snap_every_ns)) = header else {
        return Err(format!(
            "{NO_START} — not an NSCC_LIVE feed (or the writer has not attached yet)"
        ));
    };
    Ok(Feed {
        bench,
        feed_version,
        schema_version,
        snap_every_ns,
        snaps,
        fin,
        skipped,
        partial,
    })
}

/// Render one dashboard frame. Pure function of the parsed feed, so
/// `--once` output golden-tests.
pub fn render(feed: &Feed) -> String {
    let g = |m: &BTreeMap<String, f64>, k: &str| m.get(k).copied().unwrap_or(0.0);
    let mut out = String::new();
    let cadence = if feed.snap_every_ns == 0 {
        "snapshots disabled".to_string()
    } else {
        format!("snap every {} virtual", ns(feed.snap_every_ns))
    };
    out.push_str(&format!(
        "nscc top — {} (feed v{}, schema v{}, {})\n",
        feed.bench, feed.feed_version, feed.schema_version, cadence
    ));
    match &feed.fin {
        Some(f) => out.push_str(&format!(
            "status: complete after {} wall, {} snapshots\n",
            ns(f.wall_ns),
            feed.snaps.len()
        )),
        None => out.push_str(&format!(
            "status: running, {} snapshots\n",
            feed.snaps.len()
        )),
    }
    if feed.skipped > 0 {
        out.push_str(&format!(
            "note: {} unrecognized lines ignored\n",
            feed.skipped
        ));
    }
    if feed.partial {
        out.push_str("note: trailing line still being written (will complete on the next read)\n");
    }

    if let Some(s) = feed.snaps.last() {
        out.push('\n');
        out.push_str(&format!(
            "latest  t={}  wall={}  warp {}x\n",
            ns(g(&s.snap, "t_ns") as u64),
            ns(s.wall_ns),
            num(round2(s.warp))
        ));
        out.push_str(&format!(
            "  this snap: reads {}  writes {}  messages {}  blocked {}\n",
            num(g(&s.delta, "reads")),
            num(g(&s.delta, "writes")),
            num(g(&s.delta, "messages")),
            num(g(&s.delta, "blocked_reads"))
        ));
        out.push_str(&format!(
            "  faults:    dropped {}  retransmits {}  degraded {}  stale {}\n",
            num(g(&s.delta, "faults_dropped")),
            num(g(&s.delta, "retransmits")),
            num(g(&s.delta, "degraded_reads")),
            num(g(&s.delta, "stale_discards"))
        ));
        out.push_str(&format!(
            "  staleness: p50 {}  p99 {}  blocked {} over {} reads\n",
            num(g(&s.snap, "staleness_p50")),
            num(g(&s.snap, "staleness_p99")),
            ns(g(&s.snap, "block_ns_total") as u64),
            num(g(&s.snap, "blocked_reads"))
        ));
        out.push_str(&format!(
            "  sched:     {} events/sec  parks {}  unparks {}  exec {} of {}\n",
            num(g(&s.sched, "events_per_sec").round()),
            num(g(&s.sched, "parks")),
            num(g(&s.sched, "unparks")),
            ns(g(&s.sched, "exec_ns") as u64),
            ns(g(&s.sched, "wall_ns") as u64)
        ));
    }

    if feed.snaps.len() >= 2 {
        let dval = |k: &str| -> Vec<f64> {
            feed.snaps
                .iter()
                .map(|s| s.delta.get(k).copied().unwrap_or(0.0))
                .collect()
        };
        let rows: Vec<(&str, Vec<f64>)> = vec![
            ("reads/snap", dval("reads")),
            ("writes/snap", dval("writes")),
            ("messages/snap", dval("messages")),
            ("blocked/snap", dval("blocked_reads")),
            ("stale/snap", dval("stale_discards")),
            ("retransmits/snap", dval("retransmits")),
            ("degraded/snap", dval("degraded_reads")),
            ("dropped/snap", dval("faults_dropped")),
            (
                "events/sec",
                feed.snaps
                    .iter()
                    .map(|s| s.sched.get("events_per_sec").copied().unwrap_or(0.0))
                    .collect(),
            ),
            ("warp", feed.snaps.iter().map(|s| s.warp).collect()),
        ];
        out.push('\n');
        out.push_str("series (oldest → newest)\n");
        for (label, values) in rows {
            let last = values.last().copied().unwrap_or(0.0);
            out.push_str(&format!(
                "  {label:<16} {}  last {}\n",
                spark(&condense(&values, SERIES_WIDTH)),
                num(round2(last))
            ));
        }
    }

    if let Some(f) = &feed.fin {
        out.push('\n');
        out.push_str(&format!(
            "final — reads {}  writes {}  messages {}  retransmits {}  degraded {}  \
             restores {}\n",
            num(g(&f.counters, "reads")),
            num(g(&f.counters, "writes")),
            num(g(&f.counters, "messages")),
            num(g(&f.counters, "retransmits")),
            num(g(&f.counters, "degraded_reads")),
            num(g(&f.counters, "restores"))
        ));
        if g(&f.sched, "events") > 0.0 {
            out.push_str(&format!(
                "  sched total: {} events in {} wall ({} events/sec)\n",
                num(g(&f.sched, "events")),
                ns(g(&f.sched, "wall_ns") as u64),
                num(g(&f.sched, "events_per_sec").round())
            ));
        }
    }
    out
}

/// Read a feed file and render one frame (`nscc top --once`). A feed
/// whose `start` header has not landed yet (empty file, or only a
/// partially-written first line) renders as a waiting note rather than
/// failing — `--once` in a watch loop should not die on a race with the
/// writer.
pub fn top_file(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    match parse_feed(&text) {
        Ok(feed) => Ok(render(&feed)),
        Err(e) if e.starts_with(NO_START) => Ok(format!(
            "nscc top — {}: waiting for the writer to attach…\n",
            path.display()
        )),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Tail a feed file, repainting every `interval_ms`, until the `final`
/// line appears (`nscc top` without `--once`). A missing or still-empty
/// file means the writer has not attached yet, so it waits rather than
/// failing; a feed from a newer writer is a hard error.
pub fn follow(path: &Path, interval_ms: u64) -> Result<(), String> {
    use std::io::Write as _;
    let mut stdout = std::io::stdout();
    loop {
        let waiting = match std::fs::read_to_string(path) {
            Err(_) => Some("waiting for feed file to appear"),
            Ok(text) if text.trim().is_empty() => Some("waiting for the writer to attach"),
            Ok(text) => match parse_feed(&text) {
                Ok(feed) => {
                    // Clear the terminal and repaint from the top-left.
                    let _ = write!(stdout, "\x1b[2J\x1b[H{}", render(&feed));
                    let _ = stdout.flush();
                    if feed.fin.is_some() {
                        return Ok(());
                    }
                    None
                }
                Err(e) if e.starts_with(NO_START) => Some("waiting for the writer to attach"),
                Err(e) => return Err(format!("{}: {e}", path.display())),
            },
        };
        if let Some(why) = waiting {
            let _ = write!(
                stdout,
                "\x1b[2J\x1b[Hnscc top — {}: {why}…\n",
                path.display()
            );
            let _ = stdout.flush();
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const START: &str = r#"{"feed_version":1,"kind":"start","bench":"unit","schema_version":4,"snap_every_ns":1000000}"#;

    fn snap_line(wall_ns: u64, t_ns: u64, reads: u64, d_reads: u64, eps: f64) -> String {
        format!(
            r#"{{"feed_version":1,"kind":"snap","wall_ns":{wall_ns},"warp":1000,"snap":{{"t_ns":{t_ns},"reads":{reads},"writes":5,"messages":8,"stale_discards":1,"staleness_p50":2,"staleness_p99":4,"block_ns_total":500,"blocked_reads":3}},"delta":{{"reads":{d_reads},"writes":5,"messages":8,"stale_discards":1,"faults_dropped":0,"retransmits":0,"degraded_reads":0,"blocked_reads":3}},"sched":{{"events":50,"parks":4,"unparks":5,"exec_ns":400,"wall_ns":800,"events_per_sec":{eps},"procs":[]}}}}"#
        )
    }

    const FINAL: &str = r#"{"feed_version":1,"kind":"final","bench":"unit","wall_ns":2500,"counters":{"reads":30,"writes":10,"messages":16,"retransmits":0,"degraded_reads":0,"restores":0},"sched":{"events":120,"parks":10,"unparks":12,"exec_ns":1500,"wall_ns":2400,"events_per_sec":50000000,"procs":[]}}"#;

    #[test]
    fn parses_a_feed_and_ignores_unknown_kinds() {
        let text = format!(
            "{START}\n{}\n{{\"feed_version\":1,\"kind\":\"someday\"}}\nnot json\n{FINAL}\n",
            snap_line(1000, 1_000_000, 10, 10, 62500000.0)
        );
        let feed = parse_feed(&text).unwrap();
        assert_eq!(feed.bench, "unit");
        assert_eq!(feed.schema_version, 4);
        assert_eq!(feed.snap_every_ns, 1_000_000);
        assert_eq!(feed.snaps.len(), 1);
        assert_eq!(feed.snaps[0].delta["reads"], 10.0);
        assert_eq!(feed.skipped, 2);
        assert_eq!(feed.fin.as_ref().unwrap().counters["reads"], 30.0);
    }

    #[test]
    fn refuses_a_newer_feed_and_a_missing_header() {
        let err = parse_feed(r#"{"feed_version":2,"kind":"start","bench":"x"}"#).unwrap_err();
        assert!(err.contains("feed version 2"), "{err}");
        let err = parse_feed("").unwrap_err();
        assert!(err.contains("no start line"), "{err}");
    }

    #[test]
    fn renders_a_complete_run_frame() {
        // Golden frame over a two-snap feed: header, latest-snap detail,
        // sparkline series, final totals.
        let text = format!(
            "{START}\n{}\n{}\n{FINAL}\n",
            snap_line(1000, 1_000_000, 10, 10, 62500000.0),
            snap_line(2000, 2_000_000, 30, 20, 50000000.0)
        );
        let frame = render(&parse_feed(&text).unwrap());
        let expected = "\
nscc top — unit (feed v1, schema v4, snap every 1.00ms virtual)
status: complete after 2.50us wall, 2 snapshots

latest  t=2.00ms  wall=2.00us  warp 1000x
  this snap: reads 20  writes 5  messages 8  blocked 3
  faults:    dropped 0  retransmits 0  degraded 0  stale 1
  staleness: p50 2  p99 4  blocked 500ns over 3 reads
  sched:     50000000 events/sec  parks 4  unparks 5  exec 400ns of 800ns

series (oldest → newest)
  reads/snap       ▁█  last 20
  writes/snap      ▁▁  last 5
  messages/snap    ▁▁  last 8
  blocked/snap     ▁▁  last 3
  stale/snap       ▁▁  last 1
  retransmits/snap ▁▁  last 0
  degraded/snap    ▁▁  last 0
  dropped/snap     ▁▁  last 0
  events/sec       █▁  last 50000000
  warp             ▁▁  last 1000

final — reads 30  writes 10  messages 16  retransmits 0  degraded 0  restores 0
  sched total: 120 events in 2.40us wall (50000000 events/sec)
";
        assert_eq!(frame, expected);
    }

    #[test]
    fn long_series_condense_to_terminal_width() {
        // Short series pass through untouched.
        assert_eq!(condense(&[1.0, 2.0], 60), vec![1.0, 2.0]);
        // 120 points → 60 buckets of 2, averaged.
        let long: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let cells = condense(&long, 60);
        assert_eq!(cells.len(), 60);
        assert_eq!(cells[0], 0.5);
        assert_eq!(cells[59], 118.5);
        // All-NaN buckets stay NaN (a gap, not a fake zero).
        let gappy = [f64::NAN, f64::NAN, 3.0, 5.0];
        let cells = condense(&gappy, 2);
        assert!(cells[0].is_nan());
        assert_eq!(cells[1], 4.0);
        // A frame over a 200-snap feed stays bounded.
        let mut text = String::from(START);
        for i in 0..200u64 {
            text.push('\n');
            text.push_str(&snap_line(1000 + i, 1_000_000 * (i + 1), 10 * i, 10, 1e6));
        }
        let frame = render(&parse_feed(&text).unwrap());
        for line in frame.lines() {
            assert!(line.chars().count() < 100, "overlong line: {line}");
        }
    }

    #[test]
    fn truncated_trailing_line_is_partial_not_unrecognized() {
        // The writer was caught mid-append: the last line has no newline
        // and doesn't parse. The frame renders from the complete prefix
        // with a "still being written" note, not an "unrecognized" one.
        let text = format!(
            "{START}\n{}\n{{\"feed_version\":1,\"kind\":\"sn",
            snap_line(1000, 1_000_000, 10, 10, 62500000.0)
        );
        let feed = parse_feed(&text).unwrap();
        assert_eq!(feed.snaps.len(), 1);
        assert_eq!(feed.skipped, 0);
        assert!(feed.partial);
        let frame = render(&feed);
        assert!(frame.contains("still being written"), "{frame}");
        assert!(!frame.contains("unrecognized"), "{frame}");

        // A complete final line that merely lacks its newline parses and
        // counts normally — no partial note.
        let text = format!(
            "{START}\n{}",
            snap_line(1000, 1_000_000, 10, 10, 62500000.0)
        );
        let feed = parse_feed(&text).unwrap();
        assert_eq!(feed.snaps.len(), 1);
        assert!(!feed.partial);

        // A truncated line in the *middle* of the feed is real garbage.
        let text = format!(
            "{START}\n{{\"feed_version\":1,\"kind\":\"sn\n{}\n",
            snap_line(1000, 1_000_000, 10, 10, 62500000.0)
        );
        let feed = parse_feed(&text).unwrap();
        assert_eq!(feed.skipped, 1);
        assert!(!feed.partial);
    }

    #[test]
    fn once_waits_on_a_headerless_feed_instead_of_erroring() {
        let dir = std::env::temp_dir().join("nscc_top_partial");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("feed.jsonl");
        // Only a partially-written start line: --once renders a waiting
        // note rather than failing the watch loop.
        std::fs::write(&path, r#"{"feed_version":1,"kind":"sta"#).unwrap();
        let frame = top_file(&path).unwrap();
        assert!(
            frame.contains("waiting for the writer to attach"),
            "{frame}"
        );
        // A feed-version error is still fatal.
        std::fs::write(&path, "{\"feed_version\":99,\"kind\":\"start\"}\n").unwrap();
        let err = top_file(&path).unwrap_err();
        assert!(err.contains("feed version 99"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renders_a_snapshotless_run() {
        let start = r#"{"feed_version":1,"kind":"start","bench":"quiet","schema_version":4,"snap_every_ns":0}"#;
        let frame = render(&parse_feed(start).unwrap());
        assert!(frame.contains("snapshots disabled"), "{frame}");
        assert!(frame.contains("status: running, 0 snapshots"), "{frame}");
        assert!(!frame.contains("series"), "{frame}");
    }
}
