//! Small deterministic formatting helpers shared by the subcommands.

/// Render a number compactly: integers without a trailing `.0`, other
/// values via Rust's shortest-round-trip `Display`. Deterministic, so
/// diff output can be golden-tested.
pub fn num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Virtual nanoseconds as a human-scale string (`1.25ms`, `3.4s`, …).
pub fn ns(v: u64) -> String {
    let v = v as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{v}ns")
    }
}

/// Render a value series as a unicode sparkline (`▁▂▃▄▅▆▇█`), normalized
/// to the series' own min..max (a flat series renders as all-low bars).
/// Non-finite values render as spaces.
pub fn spark(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if span <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v - lo) / span * 7.0).round() as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

/// Left-pad to `width` (for simple aligned tables).
pub fn pad(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

/// Render rows as a table with per-column widths, first row as header.
pub fn table(rows: &[Vec<String>]) -> String {
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| pad(c, widths[i]))
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
        if ri == 0 {
            let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
            out.push_str(&sep.join("  "));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(-41.0), "-41");
        assert_eq!(num(2.5), "2.5");
        assert_eq!(num(0.0), "0");
    }

    #[test]
    fn ns_scales() {
        assert_eq!(ns(999), "999ns");
        assert_eq!(ns(1_500), "1.50us");
        assert_eq!(ns(2_500_000), "2.50ms");
        assert_eq!(ns(3_400_000_000), "3.40s");
    }

    #[test]
    fn sparklines_normalize_to_the_series() {
        assert_eq!(spark(&[]), "");
        assert_eq!(spark(&[1.0, 1.0, 1.0]), "▁▁▁");
        assert_eq!(spark(&[0.0, 7.0]), "▁█");
        assert_eq!(spark(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]), "▁▂▃▄▅▆▇█");
        assert_eq!(spark(&[1.0, f64::NAN, 2.0]), "▁ █");
    }

    #[test]
    fn table_aligns_and_separates_header() {
        let t = table(&[
            vec!["a".into(), "long".into()],
            vec!["xx".into(), "1".into()],
        ]);
        assert_eq!(t, " a  long\n--  ----\nxx     1\n");
    }
}
