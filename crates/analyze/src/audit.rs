//! `nscc audit`: render a run report's coherence-auditor verdict.
//!
//! A bench run with `NSCC_AUDIT=1` attaches the online invariant
//! monitors (staleness bound, write monotonicity, delivery dedup,
//! barrier lockstep, rollback bound) and stamps their verdict into the
//! report's `audit` section. This command renders that section: the
//! per-monitor check/violation table, then each recorded violation in
//! detection order. The recorded list is capped writer-side; the counts
//! are exact regardless.

use crate::fmt::{ns, num, table};
use crate::json::Json;
use crate::report::Report;

/// Render the audit verdict of one report. Returns the text and the
/// total violation count (so the CLI can exit nonzero on a dirty run).
pub fn audit(rep: &Report) -> (String, u64) {
    let mut out = format!("audit {} ({})\n", rep.name(), rep.path.display());
    let section = match rep.root.get("audit") {
        Some(s) if !matches!(s, Json::Null) => s,
        _ => {
            out.push_str(
                "  no audit section — rerun with NSCC_AUDIT=1 to attach the coherence monitors\n",
            );
            return (out, 0);
        }
    };

    let mut rows = vec![vec![
        "monitor".to_string(),
        "checked".to_string(),
        "violations".to_string(),
    ]];
    for m in section
        .get("monitors")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
    {
        rows.push(vec![
            m.get("name").and_then(Json::as_str).unwrap_or("?").into(),
            num(m.get("checked").and_then(Json::as_f64).unwrap_or(0.0)),
            num(m.get("violations").and_then(Json::as_f64).unwrap_or(0.0)),
        ]);
    }
    out.push_str(&table(&rows));

    let checked = section.get("checked").and_then(Json::as_u64).unwrap_or(0);
    let violations = section
        .get("violations")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let dropped = section.get("dropped").and_then(Json::as_u64).unwrap_or(0);
    if violations == 0 {
        out.push_str(&format!(
            "CLEAN: {} checks, no violations\n",
            num(checked as f64)
        ));
        return (out, 0);
    }

    out.push_str(&format!(
        "VIOLATIONS: {} across {} checks\n",
        num(violations as f64),
        num(checked as f64)
    ));
    for v in section
        .get("recorded")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
    {
        out.push_str(&format!(
            "  [{}] {} rank {}: {}\n",
            ns(v.get("t_ns").and_then(Json::as_u64).unwrap_or(0)),
            v.get("monitor").and_then(Json::as_str).unwrap_or("?"),
            num(v.get("rank").and_then(Json::as_f64).unwrap_or(0.0)),
            v.get("detail").and_then(Json::as_str).unwrap_or("?"),
        ));
    }
    if dropped > 0 {
        out.push_str(&format!(
            "  … {} more past the recording cap (the counts above stay exact)\n",
            num(dropped as f64)
        ));
    }
    (out, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::path::PathBuf;

    fn report(doc: &str) -> Report {
        Report {
            path: PathBuf::from("BENCH_t.json"),
            root: parse(doc).unwrap(),
        }
    }

    #[test]
    fn unaudited_report_points_at_the_env_var() {
        let rep = report(r#"{"schema_version":5,"name":"t","metrics":{},"audit":null}"#);
        let (text, violations) = audit(&rep);
        assert_eq!(violations, 0);
        assert!(text.contains("rerun with NSCC_AUDIT=1"), "{text}");
    }

    #[test]
    fn clean_audit_renders_the_monitor_table() {
        let rep = report(
            r#"{"schema_version":5,"name":"t","metrics":{},"audit":{
                "monitors":[{"name":"staleness","checked":120,"violations":0},
                            {"name":"barrier","checked":8,"violations":0}],
                "checked":128,"violations":0,"dropped":0,"recorded":[]}}"#,
        );
        let (text, violations) = audit(&rep);
        assert_eq!(violations, 0);
        assert!(text.contains("CLEAN: 128 checks"), "{text}");
        assert!(text.contains("staleness"), "{text}");
        assert!(text.contains("barrier"), "{text}");
    }

    #[test]
    fn dirty_audit_lists_recorded_violations_and_the_drop_note() {
        let rep = report(
            r#"{"schema_version":5,"name":"t","metrics":{},"audit":{
                "monitors":[{"name":"staleness","checked":120,"violations":70}],
                "checked":120,"violations":70,"dropped":6,"recorded":[
                  {"monitor":"staleness","t_ns":1500,"rank":1,
                   "detail":"read of loc 9 delivered staleness 7 > requested bound 5"}]}}"#,
        );
        let (text, violations) = audit(&rep);
        assert_eq!(violations, 70);
        assert!(text.contains("VIOLATIONS: 70 across 120 checks"), "{text}");
        assert!(
            text.contains("[1.50us] staleness rank 1: read of loc 9"),
            "{text}"
        );
        assert!(text.contains("… 6 more past the recording cap"), "{text}");
    }
}
