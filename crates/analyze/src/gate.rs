//! `nscc gate`: the perf regression gate.
//!
//! Compares fresh `BENCH_*.json` reports against checked-in baselines
//! with per-metric relative thresholds. The simulation is deterministic
//! per seed, so any drift at all is a code change showing up in the
//! numbers — the tolerance exists only to absorb baselines transcribed
//! from 2-decimal printed tables, plus deliberate slack for metrics
//! derived from float reductions.
//!
//! Semantics:
//! - `params` must match the baseline exactly (same keys, same values).
//!   A mismatch means the comparison is meaningless (different workload),
//!   which is a configuration error (exit 2), not a regression (exit 1).
//! - Default scope is the union of `metrics.*` keys: a metric missing on
//!   either side fails the gate. `--all` widens the scope to every
//!   numeric scalar in the report (counters, histogram stats).
//! - A fresh run that dropped raw trace data (events/spans past the hub's
//!   capture capacity) still gates soundly in the default scope: every
//!   `metrics.*` value is derived from unbounded counters, not the raw
//!   streams, so truncation cannot move them. The gate prints a note and
//!   proceeds. Under `--all` the kept-stream counters (`obs.events`,
//!   `obs.spans`) enter the scope, and those saturate at the capacity —
//!   comparing them on a truncated capture is meaningless, so that case
//!   stays a configuration error.
//! - A metric passes iff `|new − base| ≤ max(rel·|base|, abs)`. Equality
//!   at the boundary passes.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::fmt::num;
use crate::report::Report;

/// Gate thresholds and scope.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Relative tolerance (fraction of the baseline magnitude).
    pub rel: f64,
    /// Absolute floor: deltas within this always pass. Absorbs baselines
    /// transcribed from 2-dp tables (worst case ±0.005 per side).
    pub abs: f64,
    /// Compare every numeric scalar, not just `metrics.*`.
    pub all: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            rel: 0.05,
            abs: 0.02,
            all: false,
        }
    }
}

/// What the gate decided, in decreasing order of severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// Everything inside tolerance.
    Pass,
    /// At least one metric drifted beyond tolerance or vanished.
    Regression,
    /// The runs are not comparable (params differ, baseline missing).
    ConfigError,
}

impl Outcome {
    /// Process exit code: 0 pass, 1 regression, 2 config error.
    pub fn exit_code(self) -> i32 {
        match self {
            Outcome::Pass => 0,
            Outcome::Regression => 1,
            Outcome::ConfigError => 2,
        }
    }
}

/// Gate one fresh report against its baseline. Returns the human-readable
/// verdict text and the outcome.
pub fn gate_pair(base: &Report, fresh: &Report, cfg: &GateConfig) -> (String, Outcome) {
    let mut out = format!(
        "gate {} vs baseline {}\n",
        fresh.path.display(),
        base.path.display()
    );

    // Params must match exactly; anything else compares different workloads.
    let (pa, pb) = (base.numeric_map("params"), fresh.numeric_map("params"));
    if pa != pb {
        let keys: BTreeSet<&String> = pa.keys().chain(pb.keys()).collect();
        for k in keys {
            match (pa.get(k), pb.get(k)) {
                (Some(a), Some(b)) if a == b => {}
                (a, b) => out.push_str(&format!(
                    "  param mismatch {k}: baseline {} vs fresh {}\n",
                    a.map_or("(missing)".into(), |v| num(*v)),
                    b.map_or("(missing)".into(), |v| num(*v)),
                )),
            }
        }
        out.push_str("  CONFIG ERROR: params differ — refresh the baseline or fix the run\n");
        return (out, Outcome::ConfigError);
    }

    // A coherence violation means the fresh run broke its own contract:
    // its numbers describe an invalid execution, so comparing them to a
    // baseline is meaningless — that's a config error (exit 2), not a
    // regression.
    let audit_violations = fresh
        .root
        .get("audit")
        .and_then(|a| a.get("violations"))
        .and_then(crate::json::Json::as_u64)
        .unwrap_or(0);
    if audit_violations > 0 {
        out.push_str(&format!(
            "  CONFIG ERROR: fresh run's coherence auditor recorded {audit_violations} \
             violation(s) — the run is invalid; see `nscc audit {}` and any \
             FLIGHT_*.json dump\n",
            fresh.path.display()
        ));
        return (out, Outcome::ConfigError);
    }

    // Raw trace truncation never moves a `metrics.*` value (those are
    // counter-derived), so the default scope gates soundly and only gets
    // a note. `--all` pulls the kept-stream counters (`obs.events`,
    // `obs.spans`) into scope, and those saturate at the capture
    // capacity, so gating a truncated capture there is meaningless.
    let obs = fresh.numeric_map("obs");
    let events_dropped = obs.get("events_dropped").copied().unwrap_or(0.0);
    let spans_dropped = obs.get("spans_dropped").copied().unwrap_or(0.0);
    if events_dropped > 0.0 || spans_dropped > 0.0 {
        if cfg.all {
            out.push_str(&format!(
                "  CONFIG ERROR: fresh run dropped raw trace data ({} events, {} spans at \
                 capture capacity) and --all gates the kept-stream counters — rerun with a \
                 larger hub capacity or gate the default metric scope\n",
                num(events_dropped),
                num(spans_dropped)
            ));
            return (out, Outcome::ConfigError);
        }
        out.push_str(&format!(
            "  note: fresh run dropped raw trace data ({} events, {} spans at capture \
             capacity); counters and histograms stay exact, gated metrics are unaffected\n",
            num(events_dropped),
            num(spans_dropped)
        ));
    }

    let scope = |r: &Report| -> BTreeMap<String, f64> {
        if cfg.all {
            // `wall.*` is the scheduler's wall-clock self-accounting
            // (NSCC_WALL=1): real host nanoseconds, nondeterministic by
            // nature, so it is never gated — only reported. `audit.*`
            // check counts exist only on NSCC_AUDIT=1 runs, so gating
            // them would fail every monitored run against an unmonitored
            // baseline; a *violation* is caught above instead. Same for
            // `staleness.*`: the anatomy counters exist only on
            // NSCC_STALENESS=1 runs, and a decomposition leak is caught
            // by the audit `conservation` monitor, not the gate.
            r.flatten()
                .into_iter()
                .filter(|(k, _)| {
                    !k.starts_with("params.")
                        && k != "schema_version"
                        && !k.starts_with("wall.")
                        && !k.starts_with("audit.")
                        && !k.starts_with("staleness.")
                })
                .collect()
        } else {
            r.numeric_map("metrics")
                .into_iter()
                .map(|(k, v)| (format!("metrics.{k}"), v))
                .collect()
        }
    };
    let (ma, mb) = (scope(base), scope(fresh));
    let keys: BTreeSet<&String> = ma.keys().chain(mb.keys()).collect();
    let total = keys.len();
    let mut failures = 0usize;
    for k in keys {
        match (ma.get(k).copied(), mb.get(k).copied()) {
            (Some(base_v), Some(new_v)) => {
                let tol = (cfg.rel * base_v.abs()).max(cfg.abs);
                let delta = new_v - base_v;
                if delta.abs() > tol {
                    failures += 1;
                    // Round display only — the comparison above is exact.
                    let round6 = |v: f64| (v * 1e6).round() / 1e6;
                    out.push_str(&format!(
                        "  FAIL {k}: {} -> {} (delta {}, allowed ±{})\n",
                        num(base_v),
                        num(new_v),
                        num(round6(delta)),
                        num(round6(tol))
                    ));
                }
            }
            (Some(base_v), None) => {
                failures += 1;
                out.push_str(&format!(
                    "  FAIL {k}: {} -> (missing from fresh run)\n",
                    num(base_v)
                ));
            }
            (None, Some(new_v)) => {
                failures += 1;
                out.push_str(&format!(
                    "  FAIL {k}: (not in baseline) -> {} — refresh the baseline\n",
                    num(new_v)
                ));
            }
            (None, None) => {}
        }
    }

    // Throughput is reported, never gated: wall-clock events/sec is the
    // scheduler-rearchitecture baseline and varies with the host.
    if let Some(line) = throughput_line(fresh) {
        out.push_str(&format!("  {line}\n"));
    }

    let outcome = if failures == 0 {
        out.push_str(&format!(
            "  PASS: {total} metrics within rel={} abs={}\n",
            num(cfg.rel),
            num(cfg.abs)
        ));
        Outcome::Pass
    } else {
        out.push_str(&format!(
            "  REGRESSION: {failures}/{total} metrics out of tolerance\n"
        ));
        Outcome::Regression
    };
    (out, outcome)
}

/// The informational wall-clock throughput of a report's `wall` section
/// (present only on `NSCC_WALL=1` runs), or `None`.
fn throughput_line(rep: &Report) -> Option<String> {
    let wall = rep.numeric_map("wall");
    let eps = wall.get("events_per_sec").copied()?;
    Some(format!(
        "wall: {} events in {} ({} events/sec, informational — never gated)",
        num(wall.get("events").copied().unwrap_or(0.0)),
        crate::fmt::ns(wall.get("wall_ns").copied().unwrap_or(0.0) as u64),
        num(eps.round())
    ))
}

/// Gate a set of fresh reports against `<baselines_dir>/<same filename>`.
/// Returns combined text and the worst outcome across all files.
pub fn gate_all(
    baselines_dir: &std::path::Path,
    fresh_paths: &[std::path::PathBuf],
    cfg: &GateConfig,
) -> (String, Outcome) {
    let mut out = String::new();
    let mut worst = Outcome::Pass;
    let mut throughput: Vec<(String, f64)> = Vec::new();
    for path in fresh_paths {
        let fresh = match Report::load(path) {
            Ok(r) => r,
            Err(e) => {
                out.push_str(&format!("{e}\n"));
                worst = worst.max(Outcome::ConfigError);
                continue;
            }
        };
        if let Some(eps) = fresh.numeric_map("wall").get("events_per_sec") {
            throughput.push((fresh.name(), *eps));
        }
        let Some(file_name) = path.file_name() else {
            out.push_str(&format!("{}: not a file path\n", path.display()));
            worst = worst.max(Outcome::ConfigError);
            continue;
        };
        let base_path = baselines_dir.join(file_name);
        let base = match Report::load(&base_path) {
            Ok(r) => r,
            Err(e) => {
                out.push_str(&format!(
                    "{e}\n  CONFIG ERROR: no baseline for {} — run `nscc gate \
                     --update-baselines` to create it\n",
                    path.display()
                ));
                worst = worst.max(Outcome::ConfigError);
                continue;
            }
        };
        let (text, outcome) = gate_pair(&base, &fresh, cfg);
        out.push_str(&text);
        worst = worst.max(outcome);
    }
    // The events/sec series across the gated set: the wall-clock
    // throughput baseline the scheduler rearchitecture must beat.
    // Informational only — it never moves the outcome.
    if !throughput.is_empty() {
        let values: Vec<f64> = throughput.iter().map(|(_, eps)| *eps).collect();
        out.push_str(&format!(
            "throughput (events/sec, informational): {}\n",
            crate::fmt::spark(&values)
        ));
        for (name, eps) in &throughput {
            out.push_str(&format!("  {name}: {}\n", num(eps.round())));
        }
    }
    (out, worst)
}

/// Copy fresh reports over their baselines (`--update-baselines`).
pub fn update_baselines(
    baselines_dir: &std::path::Path,
    fresh_paths: &[std::path::PathBuf],
) -> Result<String, String> {
    let mut out = String::new();
    std::fs::create_dir_all(baselines_dir)
        .map_err(|e| format!("{}: cannot create: {e}", baselines_dir.display()))?;
    for path in fresh_paths {
        // Validate before overwriting a known-good baseline.
        Report::load(path)?;
        let Some(file_name) = path.file_name() else {
            return Err(format!("{}: not a file path", path.display()));
        };
        let dest = baselines_dir.join(file_name);
        std::fs::copy(path, &dest)
            .map_err(|e| format!("{} -> {}: {e}", path.display(), dest.display()))?;
        out.push_str(&format!("updated {}\n", dest.display()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::path::PathBuf;

    fn report(doc: &str) -> Report {
        Report {
            path: PathBuf::from("test.json"),
            root: parse(doc).unwrap(),
        }
    }

    fn base() -> Report {
        report(
            r#"{"schema_version":2,"name":"t","params":{"runs":3,"seed":42},
               "metrics":{"speedup":10.0,"zeroish":0.0}}"#,
        )
    }

    #[test]
    fn identical_reports_pass() {
        let (text, outcome) = gate_pair(&base(), &base(), &GateConfig::default());
        assert_eq!(outcome, Outcome::Pass);
        assert!(text.contains("PASS: 2 metrics"), "{text}");
        assert_eq!(outcome.exit_code(), 0);
    }

    #[test]
    fn threshold_boundary_exactly_passes_and_just_over_fails() {
        // rel=0.05 of base 10 → tolerance 0.5: 10.5 is exactly at the
        // boundary and must pass; anything beyond fails.
        let at = report(
            r#"{"schema_version":2,"name":"t","params":{"runs":3,"seed":42},
               "metrics":{"speedup":10.5,"zeroish":0.0}}"#,
        );
        let (_, outcome) = gate_pair(&base(), &at, &GateConfig::default());
        assert_eq!(outcome, Outcome::Pass);

        let over = report(
            r#"{"schema_version":2,"name":"t","params":{"runs":3,"seed":42},
               "metrics":{"speedup":10.51,"zeroish":0.0}}"#,
        );
        let (text, outcome) = gate_pair(&base(), &over, &GateConfig::default());
        assert_eq!(outcome, Outcome::Regression);
        assert!(text.contains("FAIL metrics.speedup"), "{text}");
        assert_eq!(outcome.exit_code(), 1);
    }

    #[test]
    fn absolute_floor_covers_zero_baselines() {
        // rel tolerance of a 0.0 baseline is 0; the abs floor (0.02,
        // sized for 2-dp rounding) must carry it.
        let near = report(
            r#"{"schema_version":2,"name":"t","params":{"runs":3,"seed":42},
               "metrics":{"speedup":10.0,"zeroish":0.02}}"#,
        );
        let (_, outcome) = gate_pair(&base(), &near, &GateConfig::default());
        assert_eq!(outcome, Outcome::Pass);

        let far = report(
            r#"{"schema_version":2,"name":"t","params":{"runs":3,"seed":42},
               "metrics":{"speedup":10.0,"zeroish":0.03}}"#,
        );
        let (_, outcome) = gate_pair(&base(), &far, &GateConfig::default());
        assert_eq!(outcome, Outcome::Regression);
    }

    #[test]
    fn param_mismatch_is_config_error_not_regression() {
        let other = report(
            r#"{"schema_version":2,"name":"t","params":{"runs":5,"seed":42},
               "metrics":{"speedup":10.0,"zeroish":0.0}}"#,
        );
        let (text, outcome) = gate_pair(&base(), &other, &GateConfig::default());
        assert_eq!(outcome, Outcome::ConfigError);
        assert!(
            text.contains("param mismatch runs: baseline 3 vs fresh 5"),
            "{text}"
        );
        assert_eq!(outcome.exit_code(), 2);
    }

    #[test]
    fn dropped_trace_data_is_a_note_by_default_and_a_config_error_under_all() {
        let truncated = report(
            r#"{"schema_version":2,"name":"t","params":{"runs":3,"seed":42},
               "metrics":{"speedup":10.0,"zeroish":0.0},"obs":{"events_dropped":7}}"#,
        );
        // Default scope gates counter-derived metrics, which truncation
        // cannot move: note, then a normal verdict.
        let (text, outcome) = gate_pair(&base(), &truncated, &GateConfig::default());
        assert_eq!(outcome, Outcome::Pass);
        assert!(
            text.contains("note: fresh run dropped raw trace data"),
            "{text}"
        );

        // --all gates the kept-stream counters, which saturate at the
        // capture capacity — a truncated capture is not comparable.
        let cfg = GateConfig {
            all: true,
            ..GateConfig::default()
        };
        let (text, outcome) = gate_pair(&base(), &truncated, &cfg);
        assert_eq!(outcome, Outcome::ConfigError);
        assert!(text.contains("dropped raw trace data"), "{text}");
        assert_eq!(outcome.exit_code(), 2);

        // A truncated *baseline* alone doesn't block gating a clean run.
        let (_, outcome) = gate_pair(&truncated, &base(), &GateConfig::default());
        assert_ne!(outcome, Outcome::ConfigError);
    }

    #[test]
    fn missing_metric_on_either_side_fails() {
        let fewer = report(
            r#"{"schema_version":2,"name":"t","params":{"runs":3,"seed":42},
               "metrics":{"speedup":10.0}}"#,
        );
        let (text, outcome) = gate_pair(&base(), &fewer, &GateConfig::default());
        assert_eq!(outcome, Outcome::Regression);
        assert!(text.contains("missing from fresh run"), "{text}");

        let (text, outcome) = gate_pair(&fewer, &base(), &GateConfig::default());
        assert_eq!(outcome, Outcome::Regression);
        assert!(text.contains("not in baseline"), "{text}");
    }

    #[test]
    fn all_scope_compares_counters_too() {
        let a = report(
            r#"{"schema_version":2,"name":"t","params":{},
               "metrics":{},"obs":{"reads":100}}"#,
        );
        let b = report(
            r#"{"schema_version":2,"name":"t","params":{},
               "metrics":{},"obs":{"reads":200}}"#,
        );
        let cfg = GateConfig {
            all: true,
            ..GateConfig::default()
        };
        let (text, outcome) = gate_pair(&a, &b, &cfg);
        assert_eq!(outcome, Outcome::Regression);
        assert!(text.contains("FAIL obs.reads"), "{text}");
        // Default scope ignores the counter drift entirely.
        let (_, outcome) = gate_pair(&a, &b, &GateConfig::default());
        assert_eq!(outcome, Outcome::Pass);
    }

    #[test]
    fn wall_section_is_reported_but_never_gated() {
        // Two runs whose wall-clock accounting differs wildly (as it
        // will, being host-dependent) but whose metrics agree: --all
        // must still pass, and the throughput prints as information.
        let a = report(
            r#"{"schema_version":4,"name":"t","params":{},"metrics":{"m":1.0},
               "wall":{"events":1000,"wall_ns":1000000,"events_per_sec":1000000.0}}"#,
        );
        let b = report(
            r#"{"schema_version":4,"name":"t","params":{},"metrics":{"m":1.0},
               "wall":{"events":1000,"wall_ns":2000000,"events_per_sec":500000.0}}"#,
        );
        let cfg = GateConfig {
            all: true,
            ..GateConfig::default()
        };
        let (text, outcome) = gate_pair(&a, &b, &cfg);
        assert_eq!(outcome, Outcome::Pass, "{text}");
        assert!(
            text.contains("wall: 1000 events in 2.00ms (500000 events/sec, informational"),
            "{text}"
        );
        // A wall-less baseline against a wall-stamped fresh run (or vice
        // versa) is also fine: the section is outside the gated scope.
        let (_, outcome) = gate_pair(&base(), &base(), &cfg);
        assert_eq!(outcome, Outcome::Pass);
    }

    #[test]
    fn audit_violations_make_the_fresh_run_ungateable() {
        let dirty = report(
            r#"{"schema_version":5,"name":"t","params":{"runs":3,"seed":42},
               "metrics":{"speedup":10.0,"zeroish":0.0},
               "audit":{"monitors":[],"checked":10,"violations":3,"dropped":0,
                        "recorded":[]}}"#,
        );
        let (text, outcome) = gate_pair(&base(), &dirty, &GateConfig::default());
        assert_eq!(outcome, Outcome::ConfigError);
        assert!(text.contains("coherence auditor recorded 3"), "{text}");
        assert_eq!(outcome.exit_code(), 2);

        // A clean audited run gates normally, including under --all: the
        // audit check counts stay outside the gated scope so monitored
        // and unmonitored runs compare equal.
        let clean = report(
            r#"{"schema_version":5,"name":"t","params":{"runs":3,"seed":42},
               "metrics":{"speedup":10.0,"zeroish":0.0},
               "audit":{"monitors":[{"name":"staleness","checked":10,
                        "violations":0}],"checked":10,"violations":0,
                        "dropped":0,"recorded":[]}}"#,
        );
        let cfg = GateConfig {
            all: true,
            ..GateConfig::default()
        };
        let (text, outcome) = gate_pair(&base(), &clean, &cfg);
        assert_eq!(outcome, Outcome::Pass, "{text}");
    }

    #[test]
    fn staleness_section_is_reported_but_never_gated() {
        // A tracer-armed fresh run carries a `staleness` section whose
        // counters an untraced baseline lacks entirely: --all must not
        // fail the union over those keys, exactly like wall/audit.
        let traced = report(
            r#"{"schema_version":7,"name":"t","params":{"runs":3,"seed":42},
               "metrics":{"speedup":10.0,"zeroish":0.0},
               "staleness":{"released":120,"conservation_checked":120,
                 "conservation_violations":0,"flows_kept":120,"flows_dropped":0}}"#,
        );
        let cfg = GateConfig {
            all: true,
            ..GateConfig::default()
        };
        let (text, outcome) = gate_pair(&base(), &traced, &cfg);
        assert_eq!(outcome, Outcome::Pass, "{text}");
        let (text, outcome) = gate_pair(&traced, &base(), &cfg);
        assert_eq!(outcome, Outcome::Pass, "{text}");
    }

    #[test]
    fn gate_all_prints_the_throughput_series() {
        let dir = std::env::temp_dir().join("nscc_gate_tp");
        let baselines = dir.join("baselines");
        std::fs::create_dir_all(&dir).unwrap();
        let body = |eps: f64| {
            format!(
                r#"{{"schema_version":4,"name":"t","params":{{}},"metrics":{{"m":1.0}},
                   "wall":{{"events":10,"wall_ns":100,"events_per_sec":{eps}}}}}"#
            )
        };
        let f1 = dir.join("BENCH_a.json");
        let f2 = dir.join("BENCH_b.json");
        std::fs::write(&f1, body(100.0)).unwrap();
        std::fs::write(&f2, body(200.0)).unwrap();
        let fresh = vec![f1, f2];
        update_baselines(&baselines, &fresh).unwrap();
        let (text, outcome) = gate_all(&baselines, &fresh, &GateConfig::default());
        assert_eq!(outcome, Outcome::Pass, "{text}");
        assert!(
            text.contains("throughput (events/sec, informational): ▁█"),
            "{text}"
        );
        assert!(text.contains("  t: 100\n"), "{text}");
        assert!(text.contains("  t: 200\n"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_all_and_update_baselines_roundtrip() {
        let dir = std::env::temp_dir().join("nscc_gate_rt");
        let baselines = dir.join("baselines");
        std::fs::create_dir_all(&dir).unwrap();
        let fresh = dir.join("BENCH_t.json");
        std::fs::write(
            &fresh,
            r#"{"schema_version":2,"name":"t","params":{"runs":3},"metrics":{"m":1.0}}"#,
        )
        .unwrap();

        // No baseline yet: config error with a pointer to --update-baselines.
        let cfg = GateConfig::default();
        let (text, outcome) = gate_all(&baselines, &[fresh.clone()], &cfg);
        assert_eq!(outcome, Outcome::ConfigError);
        assert!(text.contains("--update-baselines"), "{text}");

        // Update, then the same fresh file gates clean.
        update_baselines(&baselines, &[fresh.clone()]).unwrap();
        let (text, outcome) = gate_all(&baselines, &[fresh.clone()], &cfg);
        assert_eq!(outcome, Outcome::Pass, "{text}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
