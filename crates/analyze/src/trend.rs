//! `nscc trend`: cross-run perf trajectories over committed report series.
//!
//! A *trajectory point* is a numbered copy of a run report:
//! `BENCH_<name>.<seq>.json`. The repo keeps ordered series of them under
//! `runs/` (CI appends a fresh point per merge), and this module answers
//! the longitudinal question the per-commit [`crate::gate`] cannot: not
//! "did this commit move a metric past a fixed baseline?" but "is this
//! metric *drifting* across the recent history?"
//!
//! For every metric in a series it renders a sparkline plus the newest
//! point's delta against the **rolling median** of the preceding window
//! (median, not mean, so one outlier point cannot mask or fake a drift).
//! A metric drifts when `|last − median| > max(rel·|median|, abs)` —
//! the same tolerance shape as the gate. Drift in *either* direction is
//! flagged: the simulation is deterministic per seed, so any movement at
//! all is a code change showing up in the numbers, and an "improvement"
//! can equally be a broken metric.
//!
//! `nscc trend --check` turns the flag into exit code 2 for CI.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::fmt::{num, spark};
use crate::report::Report;

/// Trend tolerances and window.
#[derive(Debug, Clone, Copy)]
pub struct TrendConfig {
    /// How many preceding points feed the rolling median.
    pub window: usize,
    /// Relative tolerance (fraction of the rolling median's magnitude).
    pub rel: f64,
    /// Absolute floor: deltas within this never count as drift.
    pub abs: f64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            window: 5,
            rel: 0.05,
            abs: 0.02,
        }
    }
}

/// Split a trajectory-point filename into `(bench, seq)`.
/// `BENCH_fig2.0003.json` → `("fig2", 3)`; anything else is `None`.
pub fn series_key(path: &Path) -> Option<(String, u64)> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
    let (bench, seq) = stem.rsplit_once('.')?;
    if bench.is_empty() || seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((bench.to_string(), seq.parse().ok()?))
}

/// Trend every `BENCH_<name>.<seq>.json` series found in `dir`.
/// Returns the rendered text and whether any metric drifted.
///
/// A directory with no series yet — missing entirely, or holding no
/// `BENCH_<name>.<seq>.json` files — is not an error: a fresh clone has
/// simply not accumulated history, so the result is a one-line note and
/// a clean exit rather than a failure that scares CI.
pub fn trend_dir(dir: &Path, cfg: &TrendConfig) -> Result<(String, bool), String> {
    let no_series = || {
        Ok((
            format!(
                "no series yet under {} (trajectory points are BENCH_<name>.<seq>.json copies \
                 of run reports)\n",
                dir.display()
            ),
            false,
        ))
    };
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return no_series(),
        Err(e) => return Err(format!("{}: cannot read: {e}", dir.display())),
    };
    let paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| series_key(p).is_some())
        .collect();
    if paths.is_empty() {
        return no_series();
    }
    trend_files(&paths, cfg)
}

/// Trend an explicit set of trajectory points, grouped by bench name and
/// ordered by sequence number regardless of argument order.
pub fn trend_files(paths: &[PathBuf], cfg: &TrendConfig) -> Result<(String, bool), String> {
    let mut groups: BTreeMap<String, Vec<(u64, PathBuf)>> = BTreeMap::new();
    for p in paths {
        let Some((bench, seq)) = series_key(p) else {
            return Err(format!(
                "{}: not a trajectory point (expected BENCH_<name>.<seq>.json)",
                p.display()
            ));
        };
        groups.entry(bench).or_default().push((seq, p.clone()));
    }

    let mut out = String::new();
    let mut drifted_total = 0usize;
    let mut judged_total = 0usize;
    for (bench, mut points) in groups {
        points.sort();
        let reports: Vec<Report> = points
            .iter()
            .map(|(_, p)| Report::load(p))
            .collect::<Result<_, _>>()?;
        let metric_series: Vec<BTreeMap<String, f64>> =
            reports.iter().map(|r| r.numeric_map("metrics")).collect();
        // Union of metric keys: a metric that vanished from newer points
        // still shows (its series just goes blank at the tail).
        let keys: std::collections::BTreeSet<&String> =
            metric_series.iter().flat_map(|m| m.keys()).collect();

        out.push_str(&format!(
            "trend {bench}: {} points (seq {}..{}), window {}, rel {} abs {}\n",
            points.len(),
            points.first().map_or(0, |(s, _)| *s),
            points.last().map_or(0, |(s, _)| *s),
            cfg.window,
            num(cfg.rel),
            num(cfg.abs)
        ));
        for key in keys {
            let values: Vec<f64> = metric_series
                .iter()
                .map(|m| m.get(key).copied().unwrap_or(f64::NAN))
                .collect();
            let verdict = judge(&values, cfg);
            if let Verdict::Drift { .. } = verdict {
                drifted_total += 1;
            }
            if !matches!(verdict, Verdict::TooFew) {
                judged_total += 1;
            }
            out.push_str(&format!(
                "  {key:<34} {}  last {}  {}\n",
                spark(&values),
                values
                    .last()
                    .filter(|v| v.is_finite())
                    .map_or("(gone)".to_string(), |v| num(round6(*v))),
                verdict
            ));
        }
    }
    let regressed = drifted_total > 0;
    if regressed {
        out.push_str(&format!(
            "DRIFT: {drifted_total}/{judged_total} metrics moved beyond tolerance of their \
             rolling median\n"
        ));
    } else {
        out.push_str(&format!(
            "PASS: {judged_total} metrics within tolerance of their rolling medians\n"
        ));
    }
    Ok((out, regressed))
}

/// The per-metric trend verdict.
enum Verdict {
    /// Fewer than two usable points — nothing to compare yet.
    TooFew,
    /// Within tolerance of the rolling median.
    Ok { delta: f64, median: f64 },
    /// Beyond tolerance of the rolling median (either direction), or the
    /// metric vanished from the newest point.
    Drift { delta: f64, median: f64, gone: bool },
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::TooFew => write!(f, "n/a (need ≥2 points)"),
            Verdict::Ok { delta, median } => write!(
                f,
                "Δ{:+} vs median {} (ok)",
                round6(*delta),
                num(round6(*median))
            ),
            Verdict::Drift { gone: true, .. } => write!(f, "DRIFT (missing from newest point)"),
            Verdict::Drift { delta, median, .. } => write!(
                f,
                "Δ{:+} vs median {} DRIFT",
                round6(*delta),
                num(round6(*median))
            ),
        }
    }
}

/// Display rounding only — drift detection compares exactly.
fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

fn judge(values: &[f64], cfg: &TrendConfig) -> Verdict {
    let Some((&last, prev)) = values.split_last() else {
        return Verdict::TooFew;
    };
    // The rolling window: the newest `cfg.window` *present* values before
    // the last point (a point missing the metric doesn't shrink history).
    let window: Vec<f64> = prev
        .iter()
        .rev()
        .filter(|v| v.is_finite())
        .take(cfg.window.max(1))
        .copied()
        .collect();
    if window.is_empty() {
        return Verdict::TooFew;
    }
    let median = median(&window);
    if !last.is_finite() {
        return Verdict::Drift {
            delta: f64::NAN,
            median,
            gone: true,
        };
    }
    let delta = last - median;
    let tol = (cfg.rel * median.abs()).max(cfg.abs);
    if delta.abs() > tol {
        Verdict::Drift {
            delta,
            median,
            gone: false,
        }
    } else {
        Verdict::Ok { delta, median }
    }
}

fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_point(dir: &Path, bench: &str, seq: u64, speedup: f64) -> PathBuf {
        let path = dir.join(format!("BENCH_{bench}.{seq:04}.json"));
        std::fs::write(
            &path,
            format!(
                r#"{{"schema_version":4,"name":"{bench}","params":{{"runs":3}},"metrics":{{"speedup":{speedup}}}}}"#
            ),
        )
        .unwrap();
        path
    }

    fn temp_series(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nscc_trend_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn filenames_split_into_bench_and_seq() {
        let key = |s: &str| series_key(Path::new(s));
        assert_eq!(key("runs/BENCH_fig2.0003.json"), Some(("fig2".into(), 3)));
        assert_eq!(
            key("BENCH_fault_study.12.json"),
            Some(("fault_study".into(), 12))
        );
        assert_eq!(key("BENCH_fig2.json"), None);
        assert_eq!(key("BENCH_fig2.abc.json"), None);
        assert_eq!(key("TRACE_fig2.0001.json"), None);
    }

    #[test]
    fn a_seeded_regression_in_the_newest_point_is_flagged() {
        let dir = temp_series("seeded");
        for (seq, v) in [(1, 10.0), (2, 10.1), (3, 9.9), (4, 10.0)] {
            write_point(&dir, "x", seq, v);
        }
        // Steady series: within tolerance of its rolling median.
        let (text, regressed) = trend_dir(&dir, &TrendConfig::default()).unwrap();
        assert!(!regressed, "{text}");
        assert!(text.contains("(ok)"), "{text}");
        assert!(text.contains("PASS: 1 metrics"), "{text}");

        // Seed a drop well past rel=0.05 of the median (10.0): drift.
        write_point(&dir, "x", 5, 8.0);
        let (text, regressed) = trend_dir(&dir, &TrendConfig::default()).unwrap();
        assert!(regressed, "{text}");
        assert!(text.contains("Δ-2 vs median 10 DRIFT"), "{text}");
        assert!(text.contains("DRIFT: 1/1 metrics"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn points_are_ordered_by_sequence_not_argument_order() {
        let dir = temp_series("order");
        // Passed newest-first: ordering by seq must still put the
        // regression at the sparkline's right edge.
        let paths = vec![
            write_point(&dir, "x", 3, 5.0),
            write_point(&dir, "x", 1, 10.0),
            write_point(&dir, "x", 2, 10.0),
        ];
        let (text, regressed) = trend_files(&paths, &TrendConfig::default()).unwrap();
        assert!(regressed, "{text}");
        assert!(text.contains("██▁"), "{text}");
        assert!(text.contains("last 5"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn golden_render_of_a_two_bench_directory() {
        let dir = temp_series("golden");
        for (seq, v) in [(1, 2.0), (2, 2.0), (3, 2.01)] {
            write_point(&dir, "a", seq, v);
        }
        for (seq, v) in [(1, 1.0), (2, 1.5)] {
            write_point(&dir, "b", seq, v);
        }
        let (text, regressed) = trend_dir(&dir, &TrendConfig::default()).unwrap();
        let expected = "\
trend a: 3 points (seq 1..3), window 5, rel 0.05 abs 0.02
  speedup                            ▁▁█  last 2.01  Δ+0.01 vs median 2 (ok)
trend b: 2 points (seq 1..2), window 5, rel 0.05 abs 0.02
  speedup                            ▁█  last 1.5  Δ+0.5 vs median 1 DRIFT
DRIFT: 1/2 metrics moved beyond tolerance of their rolling median
";
        assert_eq!(text, expected);
        assert!(regressed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn an_empty_or_missing_series_directory_is_a_note_not_an_error() {
        let dir = temp_series("empty");
        let (text, regressed) = trend_dir(&dir, &TrendConfig::default()).unwrap();
        assert!(!regressed);
        assert!(text.starts_with("no series yet under "), "{text}");
        assert_eq!(text.lines().count(), 1, "{text}");

        std::fs::remove_dir_all(&dir).ok();
        let (text, regressed) = trend_dir(&dir, &TrendConfig::default()).unwrap();
        assert!(!regressed);
        assert!(text.starts_with("no series yet under "), "{text}");
    }

    #[test]
    fn a_vanished_metric_is_drift_and_single_points_are_not_judged() {
        let dir = temp_series("gone");
        write_point(&dir, "x", 1, 10.0);
        let (text, regressed) = trend_dir(&dir, &TrendConfig::default()).unwrap();
        assert!(!regressed, "{text}");
        assert!(text.contains("n/a (need ≥2 points)"), "{text}");

        // Point 2 drops the metric entirely.
        let path = dir.join("BENCH_x.0002.json");
        std::fs::write(
            &path,
            r#"{"schema_version":4,"name":"x","params":{"runs":3},"metrics":{}}"#,
        )
        .unwrap();
        let (text, regressed) = trend_dir(&dir, &TrendConfig::default()).unwrap();
        assert!(regressed, "{text}");
        assert!(text.contains("DRIFT (missing from newest point)"), "{text}");
        assert!(text.contains("last (gone)"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
