//! `nscc` — trace analysis, run diffing, and the perf regression gate.
//!
//! ```text
//! nscc inspect <FILE...>                      summarize reports / event dumps
//! nscc inspect --ckpt <DIR>                   list checkpoint generations
//! nscc diff <OLD> <NEW>                       structured delta of two runs
//! nscc heat <REPORT...>                       per-location staleness heatmaps
//! nscc why <REPORT> [--proc P] [--locn L]     causal read attribution
//! nscc gate [OPTS] <FRESH...>                 compare against baselines/
//!   --baselines <DIR>    baseline directory (default: baselines)
//!   --rel <R>            relative tolerance (default: 0.05)
//!   --abs <A>            absolute floor (default: 0.02)
//!   --all                gate every numeric scalar, not just metrics.*
//!   --update-baselines   copy fresh reports over the baselines and exit
//! nscc audit <REPORT...>                      coherence-monitor verdicts (NSCC_AUDIT=1)
//! nscc anatomy <REPORT...>                    staleness stage decomposition (NSCC_STALENESS=1)
//! nscc drill <REPORT...>                      recovery-drill verdicts (snapshots/supervision)
//! nscc postmortem <FLIGHT>                    analyze a flight-recorder dump
//! nscc top [--once] [--interval MS] <FEED>    dashboard over an NSCC_LIVE feed
//! nscc trend [OPTS] [POINT...]                metric trajectories over runs/
//!   --dir <DIR>          series directory (default: runs)
//!   --window <N>         rolling-median window (default: 5)
//!   --rel <R> --abs <A>  drift tolerances (defaults: 0.05 / 0.02)
//!   --check              exit 2 when any metric drifted
//! nscc hunt|shrink|replay [ARGS...]           delegate to the nscc-hunt binary
//! ```
//!
//! The hunt family is implemented by the sibling `nscc-hunt` binary
//! (crate `nscc-hunt`); this front-end locates it (`NSCC_HUNT_BIN`, then
//! next to the `nscc` executable, then `$PATH`) and forwards the
//! arguments verbatim, propagating the exit code.
//!
//! Exit codes: 0 success/pass, 1 regression, 2 usage or config error.

use std::path::PathBuf;
use std::process::ExitCode;

use nscc_analyze::{
    anatomy, audit, diff, drill, follow, gate_all, heat, inspect, inspect_ckpt_dir, postmortem,
    top_file, trend_dir, trend_files, update_baselines, why, GateConfig, Report, TrendConfig,
};

const USAGE: &str = "\
nscc — NSCC run analysis

usage:
  nscc inspect <FILE...>
  nscc inspect --ckpt <DIR>
  nscc diff <OLD> <NEW>
  nscc heat <REPORT...>
  nscc why <REPORT> [--proc P] [--locn L]
  nscc gate [--baselines DIR] [--rel R] [--abs A] [--all] [--update-baselines] <FRESH...>
  nscc audit <REPORT...>
  nscc anatomy <REPORT...>
  nscc drill <REPORT...>
  nscc postmortem <FLIGHT>
  nscc top [--once] [--interval MS] <FEED>
  nscc trend [--dir DIR] [--window N] [--rel R] [--abs A] [--check] [POINT...]
  nscc hunt --seed S --budget N [--workers W] [--out DIR] [--sabotage] [--shrink-cap K]
  nscc shrink <repro.json> [--out PATH]
  nscc replay <file-or-dir>...

Artifacts are the BENCH_*.json run reports (NSCC_JSON=1), TRACE_*.json
event dumps (NSCC_TRACE=1), FLIGHT_*.json flight-recorder dumps (cut
from the NSCC_FLIGHT ring when a monitored run fails), NSCC_CKPT_DIR
checkpoint stores and NSCC_LIVE telemetry feeds written by the bench
binaries; trend points are numbered report copies (BENCH_<name>.<seq>
.json, e.g. under runs/).
Exit codes: 0 pass, 1 regression/violation, 2 usage/config error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "inspect" => cmd_inspect(rest),
        "diff" => cmd_diff(rest),
        "heat" => cmd_heat(rest),
        "why" => cmd_why(rest),
        "gate" => cmd_gate(rest),
        "audit" => cmd_audit(rest),
        "anatomy" => cmd_anatomy(rest),
        "drill" => cmd_drill(rest),
        "postmortem" => cmd_postmortem(rest),
        "top" => cmd_top(rest),
        "trend" => cmd_trend(rest),
        "hunt" | "shrink" | "replay" => cmd_hunt_family(cmd, rest),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("nscc: unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Report, ExitCode> {
    Report::load(path).map_err(|e| {
        eprintln!("nscc: {e}");
        ExitCode::from(2)
    })
}

/// Forward-compatible load for the read-only renderers (`inspect`,
/// `diff`): a report stamped by a newer schema still loads, with a
/// one-line note naming the sections this nscc cannot render, instead of
/// the strict loader's exit 2. Enforcement commands (`gate`) keep the
/// strict loader.
fn load_lenient(path: &str) -> Result<Report, ExitCode> {
    let rep = Report::load_lenient(path).map_err(|e| {
        eprintln!("nscc: {e}");
        ExitCode::from(2)
    })?;
    let unknown = rep.unknown_sections();
    if !unknown.is_empty() {
        eprintln!(
            "nscc: note: {}: schema v{} is newer than this analyzer's v{}; \
             skipping unrecognized section(s): {}",
            path,
            rep.schema_version(),
            nscc_analyze::SCHEMA_VERSION,
            unknown.join(", ")
        );
    }
    Ok(rep)
}

fn cmd_inspect(files: &[String]) -> ExitCode {
    if files.first().map(String::as_str) == Some("--ckpt") {
        let [_, dir] = files else {
            eprintln!("nscc inspect: --ckpt needs exactly one directory\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        };
        return match inspect_ckpt_dir(std::path::Path::new(dir)) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("nscc inspect: {e}");
                ExitCode::from(2)
            }
        };
    }
    if files.is_empty() {
        eprintln!("nscc inspect: no files given\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    for (i, path) in files.iter().enumerate() {
        let rep = match load_lenient(path) {
            Ok(r) => r,
            Err(code) => return code,
        };
        if i > 0 {
            println!();
        }
        print!("{}", inspect(&rep));
    }
    ExitCode::SUCCESS
}

fn cmd_diff(files: &[String]) -> ExitCode {
    let [old, new] = files else {
        eprintln!("nscc diff: expected exactly <OLD> <NEW>\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let (a, b) = match (load_lenient(old), load_lenient(new)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    print!("{}", diff(&a, &b));
    ExitCode::SUCCESS
}

fn cmd_heat(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("nscc heat: no reports given\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    for (i, path) in files.iter().enumerate() {
        let rep = match load(path) {
            Ok(r) => r,
            Err(code) => return code,
        };
        if i > 0 {
            println!();
        }
        print!("{}", heat(&rep));
    }
    ExitCode::SUCCESS
}

fn cmd_why(args: &[String]) -> ExitCode {
    let mut report: Option<String> = None;
    let mut proc_sel: Option<String> = None;
    let mut loc_sel: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--proc" | "--locn" => {
                let Some(v) = it.next() else {
                    eprintln!("nscc why: {arg} needs a value");
                    return ExitCode::from(2);
                };
                if arg == "--proc" {
                    proc_sel = Some(v.clone());
                } else {
                    loc_sel = Some(v.clone());
                }
            }
            flag if flag.starts_with('-') => {
                eprintln!("nscc why: unknown flag `{flag}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            path if report.is_none() => report = Some(path.to_string()),
            extra => {
                eprintln!("nscc why: unexpected argument `{extra}` (one report at a time)\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = report else {
        eprintln!("nscc why: no report given\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rep = match load(&path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match why(&rep, proc_sel.as_deref(), loc_sel.as_deref()) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("nscc why: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_gate(args: &[String]) -> ExitCode {
    let mut cfg = GateConfig::default();
    let mut baselines = PathBuf::from("baselines");
    let mut update = false;
    let mut fresh: Vec<PathBuf> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            it.next().cloned().ok_or_else(|| {
                eprintln!("nscc gate: {name} needs a value");
                ExitCode::from(2)
            })
        };
        match arg.as_str() {
            "--baselines" => match value("--baselines") {
                Ok(v) => baselines = PathBuf::from(v),
                Err(code) => return code,
            },
            "--rel" | "--abs" => {
                let parsed = match value(arg) {
                    Ok(v) => v.parse::<f64>(),
                    Err(code) => return code,
                };
                match parsed {
                    Ok(v) if v >= 0.0 => {
                        if arg == "--rel" {
                            cfg.rel = v;
                        } else {
                            cfg.abs = v;
                        }
                    }
                    _ => {
                        eprintln!("nscc gate: {arg} needs a non-negative number");
                        return ExitCode::from(2);
                    }
                }
            }
            "--all" => cfg.all = true,
            "--update-baselines" => update = true,
            flag if flag.starts_with('-') => {
                eprintln!("nscc gate: unknown flag `{flag}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            path => fresh.push(PathBuf::from(path)),
        }
    }
    if fresh.is_empty() {
        eprintln!("nscc gate: no fresh reports given\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    if update {
        return match update_baselines(&baselines, &fresh) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("nscc gate: {e}");
                ExitCode::from(2)
            }
        };
    }

    let (text, outcome) = gate_all(&baselines, &fresh, &cfg);
    print!("{text}");
    ExitCode::from(outcome.exit_code() as u8)
}

fn cmd_audit(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("nscc audit: no reports given\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut dirty = false;
    for (i, path) in files.iter().enumerate() {
        let rep = match load(path) {
            Ok(r) => r,
            Err(code) => return code,
        };
        if i > 0 {
            println!();
        }
        let (text, violations) = audit(&rep);
        print!("{text}");
        dirty |= violations > 0;
    }
    if dirty {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_anatomy(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("nscc anatomy: no reports given\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut leaks = 0u64;
    for (i, path) in files.iter().enumerate() {
        let rep = match load(path) {
            Ok(r) => r,
            Err(code) => return code,
        };
        if i > 0 {
            println!();
        }
        let (text, violations) = anatomy(&rep);
        print!("{text}");
        leaks += violations;
    }
    if leaks > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_drill(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("nscc drill: no reports given\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut problems = 0u64;
    for (i, path) in files.iter().enumerate() {
        let rep = match load(path) {
            Ok(r) => r,
            Err(code) => return code,
        };
        if i > 0 {
            println!();
        }
        let (text, found) = drill(&rep);
        print!("{text}");
        problems += found;
    }
    if problems > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_postmortem(files: &[String]) -> ExitCode {
    let [path] = files else {
        eprintln!("nscc postmortem: expected exactly one FLIGHT_*.json dump\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rep = match load(path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match postmortem(&rep) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("nscc postmortem: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_top(args: &[String]) -> ExitCode {
    let mut once = false;
    let mut interval_ms = 500u64;
    let mut feed: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval" => {
                let parsed = it.next().and_then(|v| v.parse::<u64>().ok());
                match parsed {
                    Some(ms) if ms > 0 => interval_ms = ms,
                    _ => {
                        eprintln!("nscc top: --interval needs a positive millisecond count");
                        return ExitCode::from(2);
                    }
                }
            }
            flag if flag.starts_with('-') => {
                eprintln!("nscc top: unknown flag `{flag}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            path if feed.is_none() => feed = Some(PathBuf::from(path)),
            extra => {
                eprintln!("nscc top: unexpected argument `{extra}` (one feed at a time)\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = feed else {
        eprintln!("nscc top: no feed file given (run a bench with NSCC_LIVE=<path>)\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = if once {
        top_file(&path).map(|frame| print!("{frame}"))
    } else {
        follow(&path, interval_ms)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nscc top: {e}");
            ExitCode::from(2)
        }
    }
}

/// Locate the sibling `nscc-hunt` binary and forward `cmd` + `rest` to
/// it verbatim, propagating its exit code. Search order: the
/// `NSCC_HUNT_BIN` override, then `nscc-hunt` / `bin_nscc-hunt` next to
/// the running executable, then bare `nscc-hunt` from `$PATH`.
fn cmd_hunt_family(cmd: &str, rest: &[String]) -> ExitCode {
    // An explicit override is authoritative: if it is wrong, fail
    // loudly below instead of silently falling back to some sibling.
    let program = match std::env::var("NSCC_HUNT_BIN") {
        Ok(over) if !over.trim().is_empty() => PathBuf::from(over),
        _ => {
            let siblings = std::env::current_exe()
                .ok()
                .and_then(|p| p.parent().map(|d| d.to_path_buf()))
                .map(|dir| [dir.join("nscc-hunt"), dir.join("bin_nscc-hunt")]);
            siblings
                .into_iter()
                .flatten()
                .find(|p| p.is_file())
                .unwrap_or_else(|| PathBuf::from("nscc-hunt"))
        }
    };
    match std::process::Command::new(&program)
        .arg(cmd)
        .args(rest)
        .status()
    {
        Ok(status) => ExitCode::from(status.code().unwrap_or(2).clamp(0, 255) as u8),
        Err(e) => {
            eprintln!(
                "nscc {cmd}: cannot run {} ({e}); build the nscc-hunt binary \
                 or point NSCC_HUNT_BIN at it",
                program.display()
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_trend(args: &[String]) -> ExitCode {
    let mut cfg = TrendConfig::default();
    let mut dir = PathBuf::from("runs");
    let mut check = false;
    let mut points: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            it.next().cloned().ok_or_else(|| {
                eprintln!("nscc trend: {name} needs a value");
                ExitCode::from(2)
            })
        };
        match arg.as_str() {
            "--dir" => match value("--dir") {
                Ok(v) => dir = PathBuf::from(v),
                Err(code) => return code,
            },
            "--window" => {
                let parsed = match value("--window") {
                    Ok(v) => v.parse::<usize>(),
                    Err(code) => return code,
                };
                match parsed {
                    Ok(n) if n > 0 => cfg.window = n,
                    _ => {
                        eprintln!("nscc trend: --window needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--rel" | "--abs" => {
                let parsed = match value(arg) {
                    Ok(v) => v.parse::<f64>(),
                    Err(code) => return code,
                };
                match parsed {
                    Ok(v) if v >= 0.0 => {
                        if arg == "--rel" {
                            cfg.rel = v;
                        } else {
                            cfg.abs = v;
                        }
                    }
                    _ => {
                        eprintln!("nscc trend: {arg} needs a non-negative number");
                        return ExitCode::from(2);
                    }
                }
            }
            "--check" => check = true,
            flag if flag.starts_with('-') => {
                eprintln!("nscc trend: unknown flag `{flag}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            path => points.push(PathBuf::from(path)),
        }
    }
    let result = if points.is_empty() {
        trend_dir(&dir, &cfg)
    } else {
        trend_files(&points, &cfg)
    };
    match result {
        Ok((text, regressed)) => {
            print!("{text}");
            if regressed && check {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("nscc trend: {e}");
            ExitCode::from(2)
        }
    }
}
