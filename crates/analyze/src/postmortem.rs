//! `nscc postmortem`: analyze a black-box flight-recorder dump.
//!
//! When a monitored run ends badly — a coherence-monitor violation, an
//! injected fault that stuck, or a scheduler deadlock — the bench
//! harness freezes the hub's bounded event ring (`NSCC_FLIGHT=<n>`) into
//! a `FLIGHT_<bench>.json` document. This command reads it offline and
//! answers "what was each process doing when it died": the violation
//! list, a per-process tail of the captured events, and suspected-cause
//! heuristics that walk the ring for the usual culprits (a stale write
//! releasing a bounded read, an abandoned retransmission, a rank parked
//! on a `Global_Read` that never released, a suspected writer).

use std::collections::BTreeMap;

use crate::fmt::{ns, num};
use crate::json::Json;
use crate::report::Report;

/// Events shown per process in the timeline section.
const TAIL: usize = 5;

/// Render the post-mortem analysis of one flight dump.
pub fn postmortem(rep: &Report) -> Result<String, String> {
    if rep.root.get("kind").and_then(Json::as_str) != Some("flight") {
        return Err(format!(
            "{}: not a flight-recorder dump (expected \"kind\":\"flight\"; dumps are \
             written as FLIGHT_<bench>.json when a run with NSCC_FLIGHT=<n> fails)",
            rep.path.display()
        ));
    }
    let get_str = |k: &str| rep.root.get(k).and_then(Json::as_str).unwrap_or("?");
    let get_u64 = |k: &str| rep.root.get(k).and_then(Json::as_u64).unwrap_or(0);
    let names: Vec<&str> = rep
        .root
        .get("proc_names")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(Json::as_str)
        .collect();
    let events = rep.root.get("events").and_then(Json::as_arr).unwrap_or(&[]);
    let violations = rep
        .root
        .get("violations")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);

    let reason = get_str("reason");
    let gloss = match reason {
        "violation" => "a coherence monitor flagged the run",
        "deadlock" => "the scheduler found every runnable process blocked",
        "fault" => "injected faults left reports behind",
        _ => "unknown cause",
    };
    let mut out = format!("postmortem {} ({})\n", get_str("bench"), rep.path.display());
    out.push_str(&format!("  reason: {reason} — {gloss}\n"));
    out.push_str(&format!(
        "  seed {}, ring capacity {}, {} events captured\n",
        get_u64("seed"),
        get_u64("capacity"),
        events.len()
    ));

    if violations.is_empty() {
        out.push_str("\nno recorded violations\n");
    } else {
        out.push_str(&format!("\nviolations ({}):\n", violations.len()));
        for v in violations {
            out.push_str(&format!(
                "  [{}] {} rank {}: {}\n",
                ns(v.get("t_ns").and_then(Json::as_u64).unwrap_or(0)),
                v.get("monitor").and_then(Json::as_str).unwrap_or("?"),
                num(v.get("rank").and_then(Json::as_f64).unwrap_or(0.0)),
                v.get("detail").and_then(Json::as_str).unwrap_or("?"),
            ));
        }
    }

    // Per-process tail: the ring is oldest-first, so the last entries per
    // rank are what each process did right before the dump was cut.
    let mut per: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut unattributed: Vec<String> = Vec::new();
    for ev in events {
        let Some((kind, body)) = tagged(ev) else {
            continue;
        };
        let line = format!(
            "[{}] {}",
            ns(body.get("t_ns").and_then(Json::as_u64).unwrap_or(0)),
            describe(kind, body)
        );
        match event_rank(body) {
            Some(rank) => per.entry(rank).or_default().push(line),
            None => unattributed.push(line),
        }
    }
    out.push_str("\nlast events per process (oldest first):\n");
    if per.is_empty() && unattributed.is_empty() {
        out.push_str("  (ring is empty)\n");
    }
    for (rank, lines) in &per {
        out.push_str(&format!("  rank {}{}:\n", rank, rank_name(&names, *rank)));
        let skipped = lines.len().saturating_sub(TAIL);
        if skipped > 0 {
            out.push_str(&format!("    … {skipped} earlier in the ring\n"));
        }
        for line in lines.iter().skip(skipped) {
            out.push_str(&format!("    {line}\n"));
        }
    }
    if !unattributed.is_empty() {
        let skipped = unattributed.len().saturating_sub(TAIL);
        out.push_str("  (no rank):\n");
        if skipped > 0 {
            out.push_str(&format!("    … {skipped} earlier in the ring\n"));
        }
        for line in unattributed.iter().skip(skipped) {
            out.push_str(&format!("    {line}\n"));
        }
    }

    let suspects = suspected_causes(reason, violations, events, &names, &per);
    out.push_str("\nsuspected causes:\n");
    if suspects.is_empty() {
        out.push_str(
            "  none found in the captured window — the ring may not reach back far \
             enough (raise NSCC_FLIGHT)\n",
        );
    } else {
        for s in suspects {
            out.push_str(&format!("  - {s}\n"));
        }
    }
    Ok(out)
}

/// Split an externally-tagged event (`{"ReadDone":{...}}`) into its
/// variant name and body.
fn tagged(ev: &Json) -> Option<(&str, &Json)> {
    let members = ev.as_obj()?;
    members.first().map(|(k, v)| (k.as_str(), v))
}

/// The rank an event belongs to, for timeline grouping: `rank` when the
/// variant carries one, else `src` (network / delivery events), else
/// `reader` (staleness-anatomy events).
fn event_rank(body: &Json) -> Option<u64> {
    body.get("rank")
        .or_else(|| body.get("src"))
        .or_else(|| body.get("reader"))
        .and_then(Json::as_u64)
}

/// ` (name)` when the dump carries a display name for the rank.
fn rank_name(names: &[&str], rank: u64) -> String {
    names
        .get(rank as usize)
        .map(|n| format!(" ({n})"))
        .unwrap_or_default()
}

/// One event as `kind key=value …` (skipping the timestamp, which the
/// caller renders). Field order follows the document, so output is
/// deterministic and golden-testable.
fn describe(kind: &str, body: &Json) -> String {
    let mut out = String::from(kind);
    if let Some(members) = body.as_obj() {
        for (k, v) in members {
            if k == "t_ns" {
                continue;
            }
            let rendered = match v {
                // u64::MAX sentinels (relaxed reads, unbounded modes,
                // broadcast destinations) don't survive the f64 round-trip
                // exactly; render them as what they mean.
                Json::Num(n) if *n >= 1.8446744073709550e19 => "max".to_string(),
                Json::Num(n) => num(*n),
                Json::Str(s) => s.clone(),
                Json::Bool(b) => b.to_string(),
                other => format!("{other:?}"),
            };
            out.push_str(&format!(" {k}={rendered}"));
        }
    }
    out
}

/// The deterministic cause heuristics: each is a cheap scan of the ring,
/// ordered most-specific first.
fn suspected_causes(
    reason: &str,
    violations: &[Json],
    events: &[Json],
    names: &[&str],
    per: &BTreeMap<u64, Vec<String>>,
) -> Vec<String> {
    let mut out = Vec::new();

    // Staleness / monotonicity violations name a location in their
    // detail; attribute the most recent publish to that location by
    // another rank — on an injected-stale run this is the write whose
    // value the fault layer re-delivered out of order.
    for v in violations {
        let Some(detail) = v.get("detail").and_then(Json::as_str) else {
            continue;
        };
        let Some(loc) = loc_in(detail) else {
            continue;
        };
        let v_rank = v.get("rank").and_then(Json::as_u64).unwrap_or(u64::MAX);
        let v_t = v.get("t_ns").and_then(Json::as_u64).unwrap_or(u64::MAX);
        let mut last_write: Option<(u64, u64, u64)> = None; // (t, rank, age)
        for ev in events {
            let Some((kind, body)) = tagged(ev) else {
                continue;
            };
            if kind != "Write" && kind != "AntiMessage" {
                continue;
            }
            let t = body.get("t_ns").and_then(Json::as_u64).unwrap_or(0);
            let w_rank = body.get("rank").and_then(Json::as_u64).unwrap_or(u64::MAX);
            if body.get("loc").and_then(Json::as_u64) == Some(loc) && t <= v_t && w_rank != v_rank {
                last_write = Some((
                    t,
                    w_rank,
                    body.get("age").and_then(Json::as_u64).unwrap_or(0),
                ));
            }
        }
        if let Some((t, w_rank, age)) = last_write {
            out.push(format!(
                "loc {loc} (flagged at [{}] on rank {v_rank}) was last published by rank \
                 {w_rank}{} at [{}], generation {age} — the delivered value predates it",
                ns(v_t),
                rank_name(names, w_rank),
                ns(t),
            ));
        }
    }

    // A rank whose final captured act is blocking on a Global_Read never
    // got its release — on a deadlock dump that IS the hang.
    for (&rank, lines) in per {
        let Some(last) = lines.last() else {
            continue;
        };
        if let Some(rest) = last.split("ReadBlocked").nth(1) {
            let verb = if reason == "deadlock" {
                "deadlocked on"
            } else {
                "still parked in"
            };
            out.push(format!(
                "rank {rank}{} {verb} a blocking Global_Read ({}) with no release in \
                 the captured window",
                rank_name(names, rank),
                rest.trim(),
            ));
        }
    }

    // Delivery-layer trouble: abandoned frames and suspected writers are
    // rare, loud, and almost always causal.
    let mut drops = 0u64;
    for ev in events {
        let Some((kind, body)) = tagged(ev) else {
            continue;
        };
        match kind {
            "RetransmitGiveUp" => out.push(format!(
                "frame {}->{} seq {} abandoned at [{}] after exhausting retries",
                num(body.get("src").and_then(Json::as_f64).unwrap_or(0.0)),
                num(body.get("dst").and_then(Json::as_f64).unwrap_or(0.0)),
                num(body.get("seq").and_then(Json::as_f64).unwrap_or(0.0)),
                ns(body.get("t_ns").and_then(Json::as_u64).unwrap_or(0)),
            )),
            "WriterSuspected" => out.push(format!(
                "rank {} declared rank {} dead at [{}]",
                num(body.get("rank").and_then(Json::as_f64).unwrap_or(0.0)),
                num(body.get("peer").and_then(Json::as_f64).unwrap_or(0.0)),
                ns(body.get("t_ns").and_then(Json::as_u64).unwrap_or(0)),
            )),
            "FaultDrop" => drops += 1,
            _ => {}
        }
    }
    if drops > 0 {
        out.push(format!(
            "fault layer dropped {drops} frame{} inside the captured window",
            if drops == 1 { "" } else { "s" }
        ));
    }

    if let Some(s) = guilty_stage(events) {
        out.push(s);
    }
    out
}

/// When the hop tracer was armed, the ring carries `ReadAnatomy` events
/// — each one a released read's observed age decomposed into the seven
/// named stages. Aggregate them and name the guilty stage: where the
/// captured window's staleness actually accrued.
fn guilty_stage(events: &[Json]) -> Option<String> {
    const STAGES: [&str; 7] = [
        "wait_ns",
        "publish_ns",
        "transit_ns",
        "fault_ns",
        "retrans_ns",
        "queue_ns",
        "apply_ns",
    ];
    let mut sums = [0u64; 7];
    let mut age_total = 0u64;
    let mut releases = 0u64;
    let mut leaks = 0u64;
    for ev in events {
        let Some(("ReadAnatomy", body)) = tagged(ev) else {
            continue;
        };
        releases += 1;
        let mut stage_sum = 0u64;
        for (i, key) in STAGES.iter().enumerate() {
            let v = body.get(key).and_then(Json::as_u64).unwrap_or(0);
            sums[i] += v;
            stage_sum += v;
        }
        let age = body.get("age_ns").and_then(Json::as_u64).unwrap_or(0);
        age_total += age;
        if stage_sum != age {
            leaks += 1;
        }
    }
    if releases == 0 || age_total == 0 {
        return None;
    }
    let (i, &worst) = sums
        .iter()
        .enumerate()
        .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))?;
    let name = STAGES[i].strip_suffix("_ns").unwrap_or(STAGES[i]);
    let mut line = format!(
        "staleness anatomy ({releases} traced release{} captured): guilty stage is \
         {name} — {} of {} total observed age ({:.1}%)",
        if releases == 1 { "" } else { "s" },
        ns(worst),
        ns(age_total),
        worst as f64 / age_total as f64 * 100.0,
    );
    if leaks > 0 {
        line.push_str(&format!(
            "; {leaks} decomposition{} did NOT sum to the observed age (hop-stamp bug)",
            if leaks == 1 { "" } else { "s" }
        ));
    }
    Some(line)
}

/// Parse the location index out of a violation detail (`… loc 9 …`).
fn loc_in(detail: &str) -> Option<u64> {
    let rest = detail.split("loc ").nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::path::PathBuf;

    fn dump(doc: &str) -> Report {
        Report {
            path: PathBuf::from("FLIGHT_t.json"),
            root: parse(doc).unwrap(),
        }
    }

    #[test]
    fn rejects_non_flight_documents() {
        let rep = dump(r#"{"schema_version":5,"name":"t","metrics":{}}"#);
        let err = postmortem(&rep).unwrap_err();
        assert!(err.contains("not a flight-recorder dump"), "{err}");
    }

    #[test]
    fn stale_violation_is_attributed_to_the_releasing_writer() {
        let rep = dump(
            r#"{"schema_version":5,"kind":"flight","bench":"fault_study","seed":7,
                "reason":"violation","capacity":256,"proc_names":["ga-0","ga-1"],
                "violations":[{"monitor":"staleness","t_ns":5000,"rank":1,
                  "detail":"read of loc 9 delivered staleness 7 > requested bound 5"}],
                "events":[
                  {"Write":{"t_ns":1000,"rank":0,"loc":9,"age":3}},
                  {"Write":{"t_ns":2000,"rank":0,"loc":9,"age":10}},
                  {"ReadDone":{"t_ns":5000,"rank":1,"loc":9,"curr_iter":10,
                    "requested":5,"delivered":3,"staleness":7,"blocked":false,
                    "block_ns":0}}]}"#,
        );
        let text = postmortem(&rep).unwrap();
        assert!(
            text.contains("reason: violation — a coherence monitor"),
            "{text}"
        );
        assert!(
            text.contains("seed 7, ring capacity 256, 3 events"),
            "{text}"
        );
        assert!(text.contains("rank 0 (ga-0):"), "{text}");
        assert!(
            text.contains("loc 9 (flagged at [5.00us] on rank 1) was last published by rank 0"),
            "{text}"
        );
        assert!(text.contains("generation 10"), "{text}");
        // Deterministic output: same input renders the same bytes.
        assert_eq!(text, postmortem(&rep).unwrap());
    }

    #[test]
    fn deadlock_dump_blames_the_parked_reader_and_abandoned_frames() {
        let rep = dump(
            r#"{"schema_version":5,"kind":"flight","bench":"fig2","seed":3,
                "reason":"deadlock","capacity":64,"proc_names":[],
                "violations":[],
                "events":[
                  {"RetransmitGiveUp":{"t_ns":900,"src":0,"dst":1,"seq":41}},
                  {"ReadBlocked":{"t_ns":1000,"rank":1,"loc":2,"need":7}}]}"#,
        );
        let text = postmortem(&rep).unwrap();
        assert!(
            text.contains("rank 1 deadlocked on a blocking Global_Read (rank=1 loc=2 need=7)"),
            "{text}"
        );
        assert!(
            text.contains("frame 0->1 seq 41 abandoned at [900ns]"),
            "{text}"
        );
    }

    #[test]
    fn empty_ring_points_at_the_capacity_knob() {
        let rep = dump(
            r#"{"schema_version":5,"kind":"flight","bench":"fig2","seed":3,
                "reason":"fault","capacity":4,"proc_names":[],"violations":[],
                "events":[]}"#,
        );
        let text = postmortem(&rep).unwrap();
        assert!(text.contains("(ring is empty)"), "{text}");
        assert!(text.contains("raise NSCC_FLIGHT"), "{text}");
    }

    #[test]
    fn anatomy_events_name_the_guilty_stage() {
        let rep = dump(
            r#"{"schema_version":7,"kind":"flight","bench":"fault_study","seed":9,
                "reason":"violation","capacity":64,"proc_names":[],
                "violations":[],
                "events":[
                  {"ReadAnatomy":{"t_ns":9000,"reader":1,"writer":0,"loc":2,
                    "write_iter":4,"msg_seq":7,"age_ns":8000,"wait_ns":500,
                    "publish_ns":500,"transit_ns":5000,"fault_ns":1000,
                    "retrans_ns":0,"queue_ns":600,"apply_ns":400}},
                  {"ReadAnatomy":{"t_ns":9500,"reader":1,"writer":0,"loc":2,
                    "write_iter":5,"msg_seq":8,"age_ns":2000,"wait_ns":0,
                    "publish_ns":0,"transit_ns":1000,"fault_ns":0,
                    "retrans_ns":0,"queue_ns":500,"apply_ns":400}}]}"#,
        );
        let text = postmortem(&rep).unwrap();
        // 6000ns of transit out of 10000ns total observed age, and the
        // second event leaks 100ns (sum 1900 != age 2000).
        assert!(
            text.contains(
                "staleness anatomy (2 traced releases captured): guilty stage is \
                 transit — 6.00us of 10.00us total observed age (60.0%)"
            ),
            "{text}"
        );
        assert!(
            text.contains("1 decomposition did NOT sum to the observed age"),
            "{text}"
        );
    }

    #[test]
    fn long_tails_are_truncated_per_process() {
        let mut events = String::new();
        for i in 0..8 {
            if i > 0 {
                events.push(',');
            }
            events.push_str(&format!(
                r#"{{"Write":{{"t_ns":{},"rank":0,"loc":1,"age":{i}}}}}"#,
                i * 100
            ));
        }
        let rep = dump(&format!(
            r#"{{"schema_version":5,"kind":"flight","bench":"t","seed":1,
                "reason":"fault","capacity":8,"proc_names":[],"violations":[],
                "events":[{events}]}}"#
        ));
        let text = postmortem(&rep).unwrap();
        assert!(text.contains("… 3 earlier in the ring"), "{text}");
        assert!(text.contains("Write rank=0 loc=1 age=7"), "{text}");
        assert!(!text.contains("age=2\n"), "{text}");
    }
}
