//! `nscc inspect`: human-readable breakdown of one artifact.
//!
//! Works on both export shapes:
//!
//! * a **run report** (`BENCH_*.json`) — parameters, headline metrics,
//!   exact counters, staleness/block/delay distributions with CDFs, warp,
//!   and the periodic metric-snapshot timeline;
//! * an **event dump** (`TRACE_*.json`, from `NSCC_TRACE=1`) — per-process
//!   blocked-time attribution (compute vs `Global_Read` blocking vs
//!   barrier waits), the critical path reconstructed from send/deliver
//!   edges, and message-queue-depth / warp timelines recomputed from the
//!   raw network events.

use std::collections::BTreeMap;

use crate::fmt::{ns, num, table};
use crate::hist::HistView;
use crate::json::Json;
use crate::report::Report;

/// Render one artifact (report or dump).
pub fn inspect(rep: &Report) -> String {
    if rep.is_event_dump() {
        inspect_dump(rep)
    } else {
        inspect_report(rep)
    }
}

// ---------------------------------------------------------------- reports

fn inspect_report(rep: &Report) -> String {
    let mut out = format!(
        "run report {} (schema v{})\n",
        rep.path.display(),
        rep.schema_version()
    );
    out.push_str(&format!("name: {}\n", rep.name()));

    for section in ["params", "metrics"] {
        let map = rep.numeric_map(section);
        if !map.is_empty() {
            out.push_str(&format!("\n{section}:\n"));
            for (k, v) in &map {
                out.push_str(&format!("  {k} = {}\n", num(*v)));
            }
        }
    }

    let obs = rep.root.get("obs");
    if let Some(obs) = obs {
        out.push_str("\ncounters:\n");
        for key in [
            "reads",
            "writes",
            "messages",
            "stale_discards",
            "barriers",
            "anti_messages",
            "checkpoints",
            "restores",
            "mailbox_warnings",
            "events",
            "spans",
        ] {
            if let Some(v) = obs.get(key).and_then(Json::as_u64) {
                out.push_str(&format!("  {key} = {v}\n"));
            }
        }
        let ev_drop = obs
            .get("events_dropped")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let sp_drop = obs.get("spans_dropped").and_then(Json::as_u64).unwrap_or(0);
        if ev_drop > 0 || sp_drop > 0 {
            out.push_str(&format!(
                "  WARNING: raw trace truncated ({ev_drop} events, {sp_drop} spans \
                 dropped at capacity); counters and histograms above stay exact\n"
            ));
        }

        for (key, unit) in [
            ("staleness", "iterations"),
            ("rollback", "iterations"),
            ("block_ns", "ns"),
            ("net_delay_ns", "ns"),
        ] {
            if let Some(h) = obs.get(key).and_then(HistView::from_json) {
                out.push_str(&format!("\n{key} ({unit}): {}\n", h.brief()));
                if !h.is_empty() {
                    out.push_str("  cdf:");
                    for (upper, frac) in h.cdf() {
                        out.push_str(&format!(" <={upper}:{:.1}%", frac * 100.0));
                    }
                    out.push('\n');
                }
            }
        }

        if let Some(w) = obs.get("warp") {
            let f = |k: &str| w.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            if f("samples") > 0.0 {
                out.push_str(&format!(
                    "\nwarp: samples={} mean={:.3} p50={:.3} p95={:.3} max={:.3}\n",
                    num(f("samples")),
                    f("mean"),
                    f("p50"),
                    f("p95"),
                    f("max")
                ));
            }
        }

        if let Some(snaps) = obs.get("snapshots").and_then(Json::as_arr) {
            if !snaps.is_empty() {
                out.push_str(&format!(
                    "\nmetric snapshots ({} samples, cumulative):\n",
                    snaps.len()
                ));
                out.push_str(&snapshot_table(snaps));
            }
        }
    }
    out
}

/// The snapshot series as a table, downsampled to at most 12 rows.
fn snapshot_table(snaps: &[Json]) -> String {
    let mut rows = vec![vec![
        "t".to_string(),
        "reads".to_string(),
        "messages".to_string(),
        "stale_p99".to_string(),
        "block_total".to_string(),
        "barriers".to_string(),
    ]];
    let step = snaps.len().div_ceil(12).max(1);
    for (i, s) in snaps.iter().enumerate() {
        if i % step != 0 && i != snaps.len() - 1 {
            continue;
        }
        let g = |k: &str| s.get(k).and_then(Json::as_u64).unwrap_or(0);
        rows.push(vec![
            ns(g("t_ns")),
            g("reads").to_string(),
            g("messages").to_string(),
            g("staleness_p99").to_string(),
            ns(g("block_ns_total")),
            g("barriers").to_string(),
        ]);
    }
    table(&rows)
}

// ------------------------------------------------------------ event dumps

/// One event, decoded from its externally-tagged form.
struct Ev<'a> {
    kind: &'a str,
    body: &'a Json,
    t: u64,
    /// The process the event is attributed to (sender for sends, receiver
    /// for delivers, rank otherwise).
    pid: Option<u32>,
}

fn decode_events(root: &Json) -> Vec<Ev<'_>> {
    let Some(events) = root.get("events").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        let Some([(kind, body)]) = e.as_obj() else {
            continue;
        };
        let t = body.get("t_ns").and_then(Json::as_u64).unwrap_or(0);
        let field = match kind.as_str() {
            "NetSend" => "src",
            "NetDeliver" => "dst",
            "Custom" => "",
            _ => "rank",
        };
        let pid = body.get(field).and_then(Json::as_u64).map(|v| v as u32);
        out.push(Ev {
            kind: kind.as_str(),
            body,
            t,
            pid,
        });
    }
    out
}

fn proc_name(names: &BTreeMap<u32, String>, pid: u32) -> String {
    names
        .get(&pid)
        .cloned()
        .unwrap_or_else(|| format!("pid{pid}"))
}

fn inspect_dump(rep: &Report) -> String {
    let root = &rep.root;
    let events = decode_events(root);
    let names: BTreeMap<u32, String> = root
        .get("proc_names")
        .and_then(Json::as_obj)
        .map(|members| {
            members
                .iter()
                .filter_map(|(k, v)| Some((k.parse().ok()?, v.as_str()?.to_string())))
                .collect()
        })
        .unwrap_or_default();

    let mut out = format!(
        "event dump {} (schema v{})\n",
        rep.path.display(),
        rep.schema_version()
    );
    let spans = root.get("spans").and_then(Json::as_arr).unwrap_or(&[]);
    out.push_str(&format!(
        "events: {}  spans: {}\n",
        events.len(),
        spans.len()
    ));
    let ev_drop = root
        .get("events_dropped")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let sp_drop = root
        .get("spans_dropped")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if ev_drop > 0 || sp_drop > 0 {
        out.push_str(&format!(
            "WARNING: trace truncated ({ev_drop} events, {sp_drop} spans dropped); \
             every analysis below is over the kept prefix only\n"
        ));
    }
    if events.is_empty() {
        out.push_str("no events: nothing to analyze\n");
        return out;
    }

    out.push_str(&attribution_section(&events, spans, &names));
    out.push_str(&critical_path_section(&events, &names));
    out.push_str(&queue_depth_section(&events));
    out.push_str(&warp_section(&events));
    out.push_str(&recovery_timeline_section(&events, &names));
    out
}

/// Crash-recovery timeline: every checkpoint cut, restore and mailbox
/// warning in event order, with the restore's rollback distance — the
/// view that shows a recovered node re-entering the sweep within its age
/// bound (DESIGN.md's recovery line). Empty when the run never
/// checkpointed.
fn recovery_timeline_section(events: &[Ev<'_>], names: &BTreeMap<u32, String>) -> String {
    let mut rows = vec![vec![
        "t".to_string(),
        "proc".to_string(),
        "event".to_string(),
        "detail".to_string(),
    ]];
    let mut restores = 0u64;
    let mut max_rollback = 0u64;
    for e in events {
        let g = |k: &str| e.body.get(k).and_then(Json::as_u64).unwrap_or(0);
        let detail = match e.kind {
            "Checkpoint" => format!("iter={} bytes={}", g("iter"), g("bytes")),
            "Restore" => {
                restores += 1;
                max_rollback = max_rollback.max(g("rollback"));
                format!(
                    "iter {} -> {} (rollback {})",
                    g("from_iter"),
                    g("to_iter"),
                    g("rollback")
                )
            }
            "MailboxHigh" => format!("depth={}", g("depth")),
            _ => continue,
        };
        rows.push(vec![
            ns(e.t),
            e.pid.map_or_else(String::new, |p| proc_name(names, p)),
            e.kind.to_lowercase(),
            detail,
        ]);
    }
    if rows.len() == 1 {
        return String::new();
    }
    format!(
        "\nrecovery timeline ({restores} restore(s), max rollback {max_rollback}):\n{}",
        table(&rows)
    )
}

/// Per-process time attribution: compute/blocked from spans, blocked-read
/// and barrier-wait time from events. The paper's whole argument is about
/// where blocked time goes, so this is the lead table.
fn attribution_section(events: &[Ev<'_>], spans: &[Json], names: &BTreeMap<u32, String>) -> String {
    #[derive(Default, Clone)]
    struct Acc {
        compute_ns: u64,
        blocked_ns: u64,
        read_block_ns: u64,
        blocked_reads: u64,
        reads: u64,
        barrier_wait_ns: u64,
        barriers: u64,
    }
    let mut per: BTreeMap<u32, Acc> = BTreeMap::new();
    for s in spans {
        let (Some(pid), Some(start), Some(end)) = (
            s.get("pid").and_then(Json::as_u64),
            s.get("start_ns").and_then(Json::as_u64),
            s.get("end_ns").and_then(Json::as_u64),
        ) else {
            continue;
        };
        let acc = per.entry(pid as u32).or_default();
        let d = end.saturating_sub(start);
        match s.get("kind").and_then(Json::as_str) {
            Some("Compute") => acc.compute_ns += d,
            Some("Blocked") => acc.blocked_ns += d,
            _ => {}
        }
    }
    for e in events {
        let Some(pid) = e.pid else { continue };
        let acc = per.entry(pid).or_default();
        match e.kind {
            "ReadDone" => {
                acc.reads += 1;
                let block = e.body.get("block_ns").and_then(Json::as_u64).unwrap_or(0);
                if block > 0 {
                    acc.blocked_reads += 1;
                    acc.read_block_ns += block;
                }
            }
            "BarrierExit" => {
                acc.barriers += 1;
                acc.barrier_wait_ns += e.body.get("wait_ns").and_then(Json::as_u64).unwrap_or(0);
            }
            _ => {}
        }
    }

    let mut rows = vec![vec![
        "proc".to_string(),
        "compute".to_string(),
        "blocked".to_string(),
        "gr_block".to_string(),
        "blocked/reads".to_string(),
        "barrier_wait".to_string(),
        "barriers".to_string(),
    ]];
    for (&pid, a) in &per {
        rows.push(vec![
            proc_name(names, pid),
            ns(a.compute_ns),
            ns(a.blocked_ns),
            ns(a.read_block_ns),
            format!("{}/{}", a.blocked_reads, a.reads),
            ns(a.barrier_wait_ns),
            a.barriers.to_string(),
        ]);
    }
    format!(
        "\nblocked-time attribution (gr_block = Global_Read blocking):\n{}",
        table(&rows)
    )
}

/// A (send → deliver) edge matched FIFO per (src, dst) channel.
struct Edge {
    send_t: u64,
    deliver_t: u64,
    src: u32,
    dst: u32,
}

fn message_edges(events: &[Ev<'_>]) -> Vec<Edge> {
    let mut queues: BTreeMap<(u32, u32), Vec<u64>> = BTreeMap::new();
    let mut edges = Vec::new();
    for e in events {
        match e.kind {
            "NetSend" => {
                let src = e.body.get("src").and_then(Json::as_u64).unwrap_or(0) as u32;
                let dst = e.body.get("dst").and_then(Json::as_u64).unwrap_or(0) as u32;
                queues.entry((src, dst)).or_default().push(e.t);
            }
            "NetDeliver" => {
                let src = e.body.get("src").and_then(Json::as_u64).unwrap_or(0) as u32;
                let dst = e.body.get("dst").and_then(Json::as_u64).unwrap_or(0) as u32;
                // Exact channel first; fall back to the broadcast channel
                // (one broadcast send fans out to many delivers, so its
                // send entry is peeked, not popped).
                let send_t = if let Some(q) = queues.get_mut(&(src, dst)).filter(|q| !q.is_empty())
                {
                    Some(q.remove(0))
                } else {
                    queues
                        .get(&(src, u32::MAX))
                        .and_then(|q| q.iter().rev().find(|&&s| s <= e.t))
                        .copied()
                };
                if let Some(send_t) = send_t {
                    edges.push(Edge {
                        send_t,
                        deliver_t: e.t,
                        src,
                        dst,
                    });
                }
            }
            _ => {}
        }
    }
    edges
}

/// Critical path: walk backwards from the process with the last event,
/// hopping across the latest enabling message edge each time. Segments
/// are `proc [from → to]`; the path explains what the makespan was spent
/// waiting on.
fn critical_path_section(events: &[Ev<'_>], names: &BTreeMap<u32, String>) -> String {
    let edges = message_edges(events);
    let mut first_event: BTreeMap<u32, u64> = BTreeMap::new();
    let mut last_event: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        let Some(pid) = e.pid else { continue };
        first_event.entry(pid).or_insert(e.t);
        let last = last_event.entry(pid).or_insert(e.t);
        *last = (*last).max(e.t);
    }
    let Some((&end_pid, &end_t)) = last_event.iter().max_by_key(|(_, &t)| t) else {
        return String::new();
    };

    let mut segments: Vec<(u32, u64, u64)> = Vec::new();
    let (mut pid, mut t) = (end_pid, end_t);
    for _ in 0..64 {
        let start = first_event.get(&pid).copied().unwrap_or(0);
        // The latest delivery into `pid` at or before `t` that actually
        // moves the walk backwards.
        let enabling = edges
            .iter()
            .filter(|e| e.dst == pid && e.deliver_t <= t && e.send_t < e.deliver_t)
            .max_by_key(|e| e.deliver_t);
        match enabling {
            // Progress is guaranteed: send_t < deliver_t <= t, so each hop
            // strictly decreases t.
            Some(e) => {
                segments.push((pid, e.deliver_t, t));
                pid = e.src;
                t = e.send_t;
            }
            None => {
                segments.push((pid, start.min(t), t));
                break;
            }
        }
    }
    segments.reverse();

    let mut out = format!(
        "\ncritical path (makespan {}, {} hops):\n",
        ns(end_t),
        segments.len().saturating_sub(1)
    );
    for (pid, from, to) in &segments {
        let share = if end_t > 0 {
            (to - from) as f64 / end_t as f64 * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<10} {} -> {}  ({}, {:.1}%)\n",
            proc_name(names, *pid),
            ns(*from),
            ns(*to),
            ns(to - from),
            share
        ));
    }
    out
}

/// In-flight message count over time (sends minus delivers), sampled on a
/// 10-bin grid — the queue-depth timeline.
fn queue_depth_section(events: &[Ev<'_>]) -> String {
    let mut sends: Vec<u64> = Vec::new();
    let mut delivers: Vec<u64> = Vec::new();
    for e in events {
        match e.kind {
            "NetSend" => sends.push(e.t),
            "NetDeliver" => delivers.push(e.t),
            _ => {}
        }
    }
    if sends.is_empty() {
        return "\nmessage queue: no traffic\n".to_string();
    }
    sends.sort_unstable();
    delivers.sort_unstable();
    let t0 = sends[0];
    let t1 = events.iter().map(|e| e.t).max().unwrap_or(t0).max(t0 + 1);
    let bins = 10u64;
    let width = ((t1 - t0) / bins).max(1);
    let mut rows = vec![vec![
        "t".to_string(),
        "in-flight".to_string(),
        "sent".to_string(),
    ]];
    let mut peak = 0i64;
    for b in 1..=bins {
        let edge = t0 + width * b;
        let sent = sends.partition_point(|&t| t <= edge);
        let arrived = delivers.partition_point(|&t| t <= edge);
        let depth = sent as i64 - arrived as i64;
        peak = peak.max(depth);
        rows.push(vec![ns(edge), depth.to_string(), sent.to_string()]);
    }
    format!(
        "\nmessage queue depth (peak in-flight {peak}):\n{}",
        table(&rows)
    )
}

/// Warp (§4.3) recomputed from raw send/deliver edges: the ratio of
/// inter-arrival to inter-send gaps of consecutive messages per channel,
/// bucketed over time.
fn warp_section(events: &[Ev<'_>]) -> String {
    let edges = message_edges(events);
    let mut per_channel: BTreeMap<(u32, u32), Vec<&Edge>> = BTreeMap::new();
    for e in &edges {
        per_channel.entry((e.src, e.dst)).or_default().push(e);
    }
    let mut samples: Vec<(u64, f64)> = Vec::new();
    for chan in per_channel.values() {
        for pair in chan.windows(2) {
            let ds = pair[1].send_t.saturating_sub(pair[0].send_t);
            let da = pair[1].deliver_t.saturating_sub(pair[0].deliver_t);
            if ds > 0 {
                samples.push((pair[1].deliver_t, da as f64 / ds as f64));
            }
        }
    }
    if samples.is_empty() {
        return String::new();
    }
    samples.sort_by_key(|&(t, _)| t);
    let t0 = samples[0].0;
    let t1 = samples[samples.len() - 1].0.max(t0 + 1);
    let bins = 10u64;
    let width = ((t1 - t0) / bins).max(1);
    let mut acc = vec![(0.0f64, 0u64); bins as usize];
    for &(t, w) in &samples {
        let idx = (((t - t0) / width) as usize).min(bins as usize - 1);
        acc[idx].0 += w;
        acc[idx].1 += 1;
    }
    let mean: f64 = samples.iter().map(|&(_, w)| w).sum::<f64>() / samples.len() as f64;
    let mut rows = vec![vec!["t".to_string(), "warp".to_string(), "n".to_string()]];
    for (i, &(sum, n)) in acc.iter().enumerate() {
        if n == 0 {
            continue;
        }
        rows.push(vec![
            ns(t0 + width * (i as u64 + 1)),
            format!("{:.3}", sum / n as f64),
            n.to_string(),
        ]);
    }
    format!(
        "\nwarp timeline ({} samples, mean {mean:.3}; 1.0 = stable network):\n{}",
        samples.len(),
        table(&rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::path::PathBuf;

    fn report_from(doc: &str) -> Report {
        Report {
            path: PathBuf::from("test.json"),
            root: parse(doc).unwrap(),
        }
    }

    #[test]
    fn report_rendering_covers_sections() {
        let rep = report_from(
            r#"{"schema_version":2,"name":"unit","params":{"procs":4},
               "metrics":{"speedup":2.5},
               "obs":{"events":3,"events_dropped":0,"spans":0,"spans_dropped":0,
                      "reads":10,"writes":4,"messages":6,"stale_discards":1,
                      "barriers":0,"anti_messages":0,
                      "staleness":{"count":10,"sum":12,"min":0,"max":5,"mean":1.2,
                                   "p50":1,"p99":5,"buckets":[[0,4],[1,3],[7,3]]},
                      "block_ns":{"count":0,"sum":0,"min":0,"max":0,"mean":0.0,
                                  "p50":0,"p99":0,"buckets":[]},
                      "net_delay_ns":{"count":6,"sum":600,"min":100,"max":100,
                                      "mean":100.0,"p50":100,"p99":100,
                                      "buckets":[[127,6]]},
                      "warp":{"samples":5,"mean":1.2,"p50":1.1,"p95":1.5,"max":2.0},
                      "snapshots":[{"t_ns":1000,"reads":5,"writes":2,"messages":3,
                        "stale_discards":0,"barriers":0,"anti_messages":0,
                        "staleness_p50":1,"staleness_p99":3,"block_ns_total":0,
                        "blocked_reads":0,"net_delay_p99":100,"events_dropped":0,
                        "spans_dropped":0}]}}"#,
        );
        let text = inspect(&rep);
        assert!(text.contains("name: unit"));
        assert!(text.contains("speedup = 2.5"));
        assert!(text.contains("reads = 10"));
        assert!(text.contains("staleness (iterations): n=10"));
        assert!(text.contains("cdf: <=0:40.0%"));
        assert!(text.contains("block_ns (ns): n=0"));
        assert!(text.contains("warp: samples=5"));
        assert!(text.contains("metric snapshots (1 samples"));
        assert!(!text.contains("WARNING"));
    }

    #[test]
    fn drop_warning_surfaces_in_reports() {
        let rep = report_from(
            r#"{"schema_version":2,"name":"unit","metrics":{},
               "obs":{"events_dropped":9,"spans_dropped":0,"reads":1}}"#,
        );
        assert!(inspect(&rep).contains("WARNING: raw trace truncated (9 events"));
    }

    fn dump() -> Report {
        // Two ranks: rank 0 computes and sends at t=10, the network
        // delivers to rank 1 at t=40, rank 1's read completes at t=50
        // after blocking 25ns, then both hit a barrier.
        report_from(
            r#"{"schema_version":2,"proc_names":{"0":"island0","1":"island1"},
               "events_dropped":0,"spans_dropped":0,
               "events":[
                 {"Write":{"t_ns":5,"rank":0,"loc":0,"age":1}},
                 {"NetSend":{"t_ns":10,"src":0,"dst":1,"bytes":64,"queue_ns":0}},
                 {"NetDeliver":{"t_ns":40,"src":0,"dst":1,"delay_ns":30}},
                 {"ReadDone":{"t_ns":50,"rank":1,"loc":0,"curr_iter":1,
                   "requested":0,"delivered":1,"staleness":0,"blocked":true,
                   "block_ns":25}},
                 {"BarrierExit":{"t_ns":60,"rank":0,"epoch":1,"wait_ns":12}},
                 {"BarrierExit":{"t_ns":60,"rank":1,"epoch":1,"wait_ns":3}}
               ],
               "spans":[
                 {"pid":0,"start_ns":0,"end_ns":10,"kind":"Compute","label":"gen"},
                 {"pid":1,"start_ns":25,"end_ns":50,"kind":"Blocked","label":"read"}
               ]}"#,
        )
    }

    #[test]
    fn dump_attribution_and_critical_path() {
        let text = inspect(&dump());
        assert!(text.contains("blocked-time attribution"));
        assert!(text.contains("island0"));
        assert!(text.contains("1/1")); // island1: one blocked read of one
        assert!(text.contains("25ns")); // its Global_Read block time
        assert!(text.contains("12ns")); // island0 barrier wait
        assert!(text.contains("critical path"));
        // The path must hop island0 → island1 across the message edge.
        let cp = text.split("critical path").nth(1).unwrap();
        let i0 = cp.find("island0").expect("island0 on path");
        let i1 = cp.find("island1").expect("island1 on path");
        assert!(i0 < i1, "sender segment precedes receiver segment");
        assert!(text.contains("message queue depth"));
        assert!(text.contains("peak in-flight 1"));
    }

    #[test]
    fn recovery_timeline_lists_checkpoints_and_restores() {
        let rep = report_from(
            r#"{"schema_version":2,"proc_names":{"1":"island1"},
               "events_dropped":0,"spans_dropped":0,
               "events":[
                 {"Checkpoint":{"t_ns":100,"rank":1,"iter":3,"bytes":512}},
                 {"MailboxHigh":{"t_ns":150,"rank":1,"depth":70}},
                 {"Restore":{"t_ns":200,"rank":1,"from_iter":5,"to_iter":3,
                   "rollback":2}}
               ],"spans":[]}"#,
        );
        let text = inspect(&rep);
        assert!(
            text.contains("recovery timeline (1 restore(s), max rollback 2)"),
            "{text}"
        );
        assert!(text.contains("iter=3 bytes=512"), "{text}");
        assert!(text.contains("iter 5 -> 3 (rollback 2)"), "{text}");
        assert!(text.contains("depth=70"), "{text}");
        assert!(text.contains("island1"), "{text}");
        // A run without recovery events has no such section.
        assert!(!inspect(&dump()).contains("recovery timeline"));
    }

    #[test]
    fn report_counters_include_recovery_and_mailbox() {
        let rep = report_from(
            r#"{"schema_version":2,"name":"unit","metrics":{},
               "obs":{"reads":1,"checkpoints":4,"restores":1,
                      "mailbox_warnings":2,
                      "rollback":{"count":1,"sum":2,"min":2,"max":2,"mean":2.0,
                                  "p50":2,"p99":2,"buckets":[[3,1]]}}}"#,
        );
        let text = inspect(&rep);
        assert!(text.contains("checkpoints = 4"), "{text}");
        assert!(text.contains("restores = 1"), "{text}");
        assert!(text.contains("mailbox_warnings = 2"), "{text}");
        assert!(text.contains("rollback (iterations): n=1"), "{text}");
    }

    #[test]
    fn zero_message_dump_does_not_panic() {
        let rep = report_from(
            r#"{"schema_version":2,"proc_names":{},"events_dropped":0,
               "spans_dropped":0,"events":[
                 {"Write":{"t_ns":5,"rank":0,"loc":0,"age":1}}
               ],"spans":[]}"#,
        );
        let text = inspect(&rep);
        assert!(text.contains("message queue: no traffic"));
        assert!(!text.contains("warp timeline"));
    }

    #[test]
    fn empty_dump_reports_nothing_to_analyze() {
        let rep = report_from(
            r#"{"schema_version":2,"proc_names":{},"events_dropped":0,
               "spans_dropped":0,"events":[],"spans":[]}"#,
        );
        assert!(inspect(&rep).contains("no events"));
    }
}
