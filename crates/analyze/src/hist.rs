//! Read-side view of the serialized log₂ histograms.
//!
//! `crates/obs` serializes a `Histogram` as exact `count/sum/min/max`,
//! derived `mean/p50/p99`, and the non-empty `(bucket_upper, count)`
//! pairs in ascending order. This view recomputes any quantile from the
//! bucket pairs with the *same* semantics as the writer (upper bound of
//! the first bucket whose cumulative count reaches `ceil(q·count)`,
//! clamped to the observed max) — which is how `nscc inspect` can report
//! p90 and a full CDF even though the report only pins p50/p99.

use crate::json::Json;

/// A deserialized histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistView {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Mean as serialized by the writer.
    pub mean: f64,
    /// Non-empty buckets as `(inclusive_upper_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistView {
    /// Read a histogram from its serialized object form. `None` when the
    /// value is not shaped like a histogram.
    pub fn from_json(v: &Json) -> Option<HistView> {
        let buckets = v
            .get("buckets")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr()?;
                Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(HistView {
            count: v.get("count")?.as_u64()?,
            sum: v.get("sum")?.as_u64()?,
            min: v.get("min")?.as_u64()?,
            max: v.get("max")?.as_u64()?,
            mean: v.get("mean")?.as_f64()?,
            buckets,
        })
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Quantile with the writer's exact semantics (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// The CDF as `(value_upper_bound, cumulative_fraction)` points, one
    /// per populated bucket. Empty when nothing was recorded.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut seen = 0u64;
        self.buckets
            .iter()
            .map(|&(upper, n)| {
                seen += n;
                (upper.min(self.max), seen as f64 / self.count as f64)
            })
            .collect()
    }

    /// One-line summary: `n=… mean=… p50=… p90=… p99=… max=…`.
    pub fn brief(&self) -> String {
        if self.is_empty() {
            return "n=0".to_string();
        }
        format!(
            "n={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count,
            self.mean,
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn hist(doc: &str) -> HistView {
        HistView::from_json(&parse(doc).unwrap()).unwrap()
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = hist(r#"{"count":0,"sum":0,"min":0,"max":0,"mean":0.0,"buckets":[]}"#);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.cdf().is_empty());
        assert_eq!(h.brief(), "n=0");
    }

    #[test]
    fn quantiles_match_writer_semantics() {
        // 99 values of 1 plus one value of 1000: p50 = 1 (bucket upper 1),
        // p100 = bucket [512,1023] clamped to max 1000 — mirrors the
        // writer-side unit test in crates/obs.
        let h = hist(
            r#"{"count":100,"sum":1099,"min":1,"max":1000,"mean":10.99,
                "buckets":[[1,99],[1023,1]]}"#,
        );
        assert_eq!(h.quantile(0.50), 1);
        assert_eq!(h.quantile(0.99), 1);
        assert_eq!(h.quantile(1.0), 1000);
        let cdf = h.cdf();
        assert_eq!(cdf, vec![(1, 0.99), (1000, 1.0)]);
    }

    #[test]
    fn p90_interpolates_between_pinned_percentiles() {
        // 8 of value ≤3, 2 of value ≤7: p90 needs the second bucket.
        let h = hist(
            r#"{"count":10,"sum":30,"min":2,"max":6,"mean":3.0,
                "buckets":[[3,8],[7,2]]}"#,
        );
        assert_eq!(h.quantile(0.80), 3);
        assert_eq!(h.quantile(0.90), 6); // 7 clamped to max
    }

    #[test]
    fn malformed_histograms_are_rejected() {
        assert!(HistView::from_json(&parse("null").unwrap()).is_none());
        assert!(HistView::from_json(&parse(r#"{"count":1}"#).unwrap()).is_none());
        assert!(HistView::from_json(
            &parse(r#"{"count":1,"sum":1,"min":1,"max":1,"mean":1.0,"buckets":[[1]]}"#).unwrap()
        )
        .is_none());
    }
}
