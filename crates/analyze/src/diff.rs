//! `nscc diff`: structured comparison of two run reports.
//!
//! Emits, in a pinned plain-text format (golden-tested below):
//! parameters, every headline metric, every scalar counter, the
//! staleness/block/delay distribution percentiles (p50/p90/p99
//! recomputed from the serialized buckets), and the aligned
//! snapshot-series convergence curve. Keys present on only one side are
//! shown as `(missing)` rather than dropped — a vanished metric is
//! usually the most interesting delta in the file.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::fmt::{ns, num};
use crate::hist::HistView;
use crate::json::Json;
use crate::report::Report;

/// Render the full diff of `a` (old) vs `b` (new).
pub fn diff(a: &Report, b: &Report) -> String {
    let mut out = format!("diff {} -> {}\n", a.path.display(), b.path.display());
    if a.name() == b.name() {
        out.push_str(&format!("name: {}\n", a.name()));
    } else {
        out.push_str(&format!("name: {} -> {}\n", a.name(), b.name()));
    }

    out.push_str(&full_section(
        "params",
        &a.numeric_map("params"),
        &b.numeric_map("params"),
    ));
    out.push_str(&full_section(
        "metrics",
        &a.numeric_map("metrics"),
        &b.numeric_map("metrics"),
    ));
    out.push_str(&counters_section(&counters(a), &counters(b)));

    for (key, unit) in [
        ("staleness", "iterations"),
        ("block_ns", "ns"),
        ("net_delay_ns", "ns"),
    ] {
        let h = |r: &Report| {
            r.root
                .get("obs")
                .and_then(|o| o.get(key))
                .and_then(HistView::from_json)
        };
        if let (Some(ha), Some(hb)) = (h(a), h(b)) {
            out.push_str(&hist_section(key, unit, &ha, &hb));
        }
    }

    out.push_str(&convergence_section(a, b));
    out
}

/// One `old -> new` cell: plain value when unchanged, arrow with a
/// relative delta otherwise, `(missing)` for an absent side.
fn delta_cell(old: Option<f64>, new: Option<f64>) -> String {
    match (old, new) {
        (Some(o), Some(n)) if o == n => num(o),
        (Some(o), Some(n)) => {
            let pct = if o != 0.0 {
                format!(" ({:+.1}%)", (n - o) / o.abs() * 100.0)
            } else {
                String::new()
            };
            format!("{} -> {}{pct}", num(o), num(n))
        }
        (Some(o), None) => format!("{} -> (missing)", num(o)),
        (None, Some(n)) => format!("(missing) -> {}", num(n)),
        (None, None) => String::new(),
    }
}

/// A section listing every key of the union (params, metrics).
fn full_section(title: &str, a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> String {
    if a.is_empty() && b.is_empty() {
        return String::new();
    }
    let keys: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let mut out = format!("\n{title}:\n");
    for k in keys {
        out.push_str(&format!(
            "  {k}: {}\n",
            delta_cell(a.get(k).copied(), b.get(k).copied())
        ));
    }
    out
}

/// Every numeric scalar outside params/metrics (dsm/net/comm/obs counters
/// and histogram stats).
fn counters(r: &Report) -> BTreeMap<String, f64> {
    r.flatten()
        .into_iter()
        .filter(|(k, _)| {
            !k.starts_with("params.") && !k.starts_with("metrics.") && k != "schema_version"
        })
        .collect()
}

/// The counters section lists only changed keys (reports carry dozens of
/// identical counters between deterministic runs) plus an unchanged tally.
fn counters_section(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> String {
    if a.is_empty() && b.is_empty() {
        return String::new();
    }
    let keys: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let mut out = String::from("\ncounters:\n");
    let mut unchanged = 0usize;
    for k in keys {
        let (old, new) = (a.get(k).copied(), b.get(k).copied());
        if old == new {
            unchanged += 1;
            continue;
        }
        out.push_str(&format!("  {k}: {}\n", delta_cell(old, new)));
    }
    if unchanged > 0 {
        out.push_str(&format!("  ({unchanged} unchanged)\n"));
    }
    out
}

fn hist_section(key: &str, unit: &str, a: &HistView, b: &HistView) -> String {
    let mut out = format!("\n{key} ({unit}):\n");
    let rows: [(&str, f64, f64); 6] = [
        ("count", a.count as f64, b.count as f64),
        ("mean", a.mean, b.mean),
        ("p50", a.quantile(0.50) as f64, b.quantile(0.50) as f64),
        ("p90", a.quantile(0.90) as f64, b.quantile(0.90) as f64),
        ("p99", a.quantile(0.99) as f64, b.quantile(0.99) as f64),
        ("max", a.max as f64, b.max as f64),
    ];
    for (label, old, new) in rows {
        out.push_str(&format!(
            "  {label}: {}\n",
            delta_cell(Some(old), Some(new))
        ));
    }
    out
}

/// The convergence-vs-virtual-time curve: the two snapshot series aligned
/// by index, downsampled to at most 8 rows.
fn convergence_section(a: &Report, b: &Report) -> String {
    let snaps = |r: &Report| -> Vec<Json> {
        r.root
            .get("obs")
            .and_then(|o| o.get("snapshots"))
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default()
    };
    let (sa, sb) = (snaps(a), snaps(b));
    match (sa.is_empty(), sb.is_empty()) {
        (true, true) => return String::new(),
        (false, true) => {
            return format!(
                "\nconvergence: snapshot series only in {}\n",
                a.path.display()
            )
        }
        (true, false) => {
            return format!(
                "\nconvergence: snapshot series only in {}\n",
                b.path.display()
            )
        }
        (false, false) => {}
    }
    let n = sa.len().min(sb.len());
    let step = n.div_ceil(8).max(1);
    let g = |s: &Json, k: &str| s.get(k).and_then(Json::as_u64).unwrap_or(0);
    let mut out = format!(
        "\nconvergence ({} aligned samples; reads and total block time, cumulative):\n",
        n
    );
    out.push_str("  t | a_reads b_reads | a_block b_block\n");
    // Sample the grid, always including the final state.
    let mut indices: Vec<usize> = (0..n).step_by(step).collect();
    if indices.last() != Some(&(n - 1)) {
        indices.push(n - 1);
    }
    for i in indices {
        let (ra, rb) = (&sa[i], &sb[i]);
        out.push_str(&format!(
            "  {} | {} {} | {} {}\n",
            ns(g(ra, "t_ns")),
            g(ra, "reads"),
            g(rb, "reads"),
            ns(g(ra, "block_ns_total")),
            ns(g(rb, "block_ns_total")),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::path::PathBuf;

    fn report(path: &str, doc: &str) -> Report {
        Report {
            path: PathBuf::from(path),
            root: parse(doc).unwrap(),
        }
    }

    /// Golden test: the full diff output format is pinned byte-for-byte.
    /// If you change the format, update this test — it is the contract
    /// downstream tooling (and EXPERIMENTS.md walkthroughs) rely on.
    #[test]
    fn golden_diff_output() {
        let a = report(
            "a.json",
            r#"{"schema_version":2,"name":"ga","params":{"runs":3},
               "metrics":{"p2_age=0":4.0,"p2_sync":2.0,"gone":1.0},
               "obs":{"reads":10,"staleness":{"count":4,"sum":4,"min":0,
                 "max":3,"mean":1.0,"p50":1,"p99":3,"buckets":[[1,3],[3,1]]}}}"#,
        );
        let b = report(
            "b.json",
            r#"{"schema_version":2,"name":"ga","params":{"runs":3},
               "metrics":{"p2_age=0":5.0,"p2_sync":2.0,"added":2.0},
               "obs":{"reads":12,"staleness":{"count":5,"sum":10,"min":0,
                 "max":7,"mean":2.0,"p50":3,"p99":7,"buckets":[[1,2],[3,1],[7,2]]}}}"#,
        );
        let expected = "\
diff a.json -> b.json
name: ga

params:
  runs: 3

metrics:
  added: (missing) -> 2
  gone: 1 -> (missing)
  p2_age=0: 4 -> 5 (+25.0%)
  p2_sync: 2

counters:
  obs.reads: 10 -> 12 (+20.0%)
  obs.staleness.count: 4 -> 5 (+25.0%)
  obs.staleness.max: 3 -> 7 (+133.3%)
  obs.staleness.mean: 1 -> 2 (+100.0%)
  obs.staleness.p50: 1 -> 3 (+200.0%)
  obs.staleness.p99: 3 -> 7 (+133.3%)
  obs.staleness.sum: 4 -> 10 (+150.0%)
  (1 unchanged)

staleness (iterations):
  count: 4 -> 5 (+25.0%)
  mean: 1 -> 2 (+100.0%)
  p50: 1 -> 3 (+200.0%)
  p90: 3 -> 7 (+133.3%)
  p99: 3 -> 7 (+133.3%)
  max: 3 -> 7 (+133.3%)
";
        assert_eq!(diff(&a, &b), expected);
    }

    #[test]
    fn missing_metric_is_reported_not_dropped() {
        let a = report(
            "a.json",
            r#"{"schema_version":2,"name":"x","metrics":{"only_a":1.0}}"#,
        );
        let b = report(
            "b.json",
            r#"{"schema_version":2,"name":"x","metrics":{"only_b":2.0}}"#,
        );
        let text = diff(&a, &b);
        assert!(text.contains("only_a: 1 -> (missing)"));
        assert!(text.contains("only_b: (missing) -> 2"));
    }

    #[test]
    fn convergence_aligns_snapshot_series() {
        let mk = |path: &str, reads: [u64; 3]| {
            let snaps: Vec<String> = reads
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    format!(
                        r#"{{"t_ns":{},"reads":{r},"block_ns_total":{}}}"#,
                        (i as u64 + 1) * 1000,
                        i as u64 * 10
                    )
                })
                .collect();
            report(
                path,
                &format!(
                    r#"{{"schema_version":2,"name":"x","metrics":{{}},
                       "obs":{{"snapshots":[{}]}}}}"#,
                    snaps.join(",")
                ),
            )
        };
        let text = diff(&mk("a.json", [5, 9, 12]), &mk("b.json", [7, 13, 20]));
        assert!(text.contains("convergence (3 aligned samples"));
        assert!(text.contains("1.00us | 5 7 |"));
        assert!(text.contains("3.00us | 12 20 |"));
    }

    /// A v2 report diffed against a v3 report that differs *only* in the
    /// causal-attribution sections (heat/deps/profile/name maps) must show
    /// no deltas: the new sections are arrays and string maps, invisible
    /// to the scalar walk by design, and `schema_version` is excluded from
    /// the counters.
    #[test]
    fn provenance_sections_do_not_pollute_the_diff() {
        let a = report(
            "a.json",
            r#"{"schema_version":2,"name":"ga","metrics":{"speedup":2.0},
               "obs":{"reads":10}}"#,
        );
        let b = report(
            "b.json",
            r#"{"schema_version":3,"name":"ga","metrics":{"speedup":2.0},
               "obs":{"reads":10,
                 "heat":[{"loc":0,"staleness":{"count":1,"sum":2,"min":2,
                   "max":2,"mean":2.0,"p50":2,"p99":2,"buckets":[[3,1]]}}],
                 "deps":[{"reader":1,"loc":0,"writer":0,"blocks":1,
                   "block_ns":500,"queued_ns":0,"inflight_ns":500,
                   "retrans_ns":0,"last_write_iter":3,"last_msg_seq":9}],
                 "profile":[{"pid":0,"phase":"compute","detail":"","samples":8}],
                 "loc_names":{"0":"best"},"proc_names":{"0":"island0"}}}"#,
        );
        let text = diff(&a, &b);
        assert!(text.contains("speedup: 2\n"), "{text}");
        // Skip the `diff a.json -> b.json` header: nothing below it may
        // report a change.
        let body = text.split_once('\n').unwrap().1;
        assert!(!body.contains("->"), "unexpected delta:\n{text}");
        assert!(!body.contains("(missing)"), "unexpected delta:\n{text}");
    }

    #[test]
    fn zero_message_reports_diff_cleanly() {
        let empty_hist = r#"{"count":0,"sum":0,"min":0,"max":0,"mean":0.0,
                            "p50":0,"p99":0,"buckets":[]}"#;
        let doc = format!(
            r#"{{"schema_version":2,"name":"idle","metrics":{{"t":1.0}},
               "obs":{{"messages":0,"net_delay_ns":{empty_hist}}}}}"#
        );
        let a = report("a.json", &doc);
        let b = report("b.json", &doc);
        let text = diff(&a, &b);
        assert!(text.contains("net_delay_ns (ns):"));
        assert!(text.contains("count: 0"));
        assert!(text.contains("(8 unchanged)"));
    }
}
