//! `nscc anatomy`: where did every nanosecond of staleness go?
//!
//! A bench run with `NSCC_STALENESS=1` arms the hop tracer: each DSM
//! update's provenance is stamped at every layer crossing, and on every
//! read release the observed age decomposes exactly into seven named
//! stage durations (`wait`, `publish`, `transit`, `fault`, `retrans`,
//! `queue`, `apply` — see the writer-side `StageSet`). The per-stage
//! log₂ histograms land in the report's `staleness` section, aggregated
//! overall, by location and by writer→reader link. This command renders
//! that section: the observed-age distribution, the stage breakdown
//! ranked by total time (the top row *is* the guilty stage), and the
//! top offending locations and links with their dominant stage.
//!
//! Output is deterministic and golden-tested; the conservation counters
//! are surfaced so a decomposition leak (stage sum ≠ observed age) is
//! impossible to miss.

use crate::fmt::{ns, num, table};
use crate::hist::HistView;
use crate::json::Json;
use crate::report::Report;

/// Stage names in conservation order (must match the writer's
/// `StageSet::named`).
const STAGES: [&str; 7] = [
    "wait", "publish", "transit", "fault", "retrans", "queue", "apply",
];

/// Rows shown in the top-locations / top-links tables.
const TOP: usize = 5;

/// One parsed stage: its name and histogram.
struct Stage {
    name: &'static str,
    hist: HistView,
}

/// Parse a serialized `StageSet` object into the stages that recorded
/// anything, in conservation order. The writer serializes each stage
/// histogram under `<name>_ns` (matching `age_ns` and the report's other
/// duration keys); the display name drops the suffix.
fn stages_of(v: &Json) -> Vec<Stage> {
    STAGES
        .iter()
        .filter_map(|&name| {
            let hist = v.get(&format!("{name}_ns")).and_then(HistView::from_json)?;
            Some(Stage { name, hist })
        })
        .collect()
}

/// The dominant stage of a stage set: largest total time, earliest
/// conservation-order stage on ties. `None` when nothing was recorded.
fn guilty(stages: &[Stage]) -> Option<(&'static str, u64)> {
    stages
        .iter()
        .map(|s| (s.name, s.hist.sum))
        .max_by_key(|&(name, sum)| {
            (
                sum,
                std::cmp::Reverse(STAGES.iter().position(|&n| n == name)),
            )
        })
        .filter(|&(_, sum)| sum > 0)
}

/// `share` as a percentage string (`43.1%`), safe for zero totals.
fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "0.0%".to_string()
    } else {
        format!("{:.1}%", part as f64 / whole as f64 * 100.0)
    }
}

/// Render the staleness anatomy of one report. Returns the text and the
/// conservation-violation count (so the CLI can exit nonzero when the
/// decomposition leaked).
pub fn anatomy(rep: &Report) -> (String, u64) {
    let mut out = format!("anatomy {} ({})\n", rep.name(), rep.path.display());
    let section = match rep.root.get("staleness") {
        Some(s) if !matches!(s, Json::Null) => s,
        _ => {
            out.push_str(
                "  no staleness section — rerun with NSCC_STALENESS=1 to arm the hop tracer\n",
            );
            return (out, 0);
        }
    };

    let g = |k: &str| section.get(k).and_then(Json::as_u64).unwrap_or(0);
    let released = g("released");
    let violations = g("conservation_violations");
    out.push_str(&format!(
        "  traced releases: {} (flows kept {}, dropped {})\n",
        num(released as f64),
        num(g("flows_kept") as f64),
        num(g("flows_dropped") as f64),
    ));
    if violations == 0 {
        out.push_str(&format!(
            "  conservation: {} decompositions checked, all stage sums equal the observed age\n",
            num(g("conservation_checked") as f64)
        ));
    } else {
        out.push_str(&format!(
            "  CONSERVATION LEAK: {} of {} decompositions do not sum to the observed age — \
             a hop stamp is wrong or missing; see the audit `conservation` monitor\n",
            num(violations as f64),
            num(g("conservation_checked") as f64),
        ));
    }
    if released == 0 {
        out.push_str("  (no blocked read released while the tracer was armed)\n");
        return (out, violations);
    }
    if let Some(age) = section.get("age_ns").and_then(HistView::from_json) {
        out.push_str(&format!("  observed age (ns): {}\n", age.brief()));
    }

    // The stage breakdown, ranked by total time: the top row is where
    // the age went.
    let stages = section.get("stages").map(stages_of).unwrap_or_default();
    let total: u64 = stages.iter().map(|s| s.hist.sum).sum();
    let mut ranked: Vec<&Stage> = stages.iter().collect();
    ranked.sort_by_key(|s| {
        (
            std::cmp::Reverse(s.hist.sum),
            STAGES.iter().position(|&n| n == s.name),
        )
    });
    out.push_str("\nstage breakdown (ranked by total time):\n");
    let mut rows = vec![vec![
        "stage".to_string(),
        "total".to_string(),
        "share".to_string(),
        "p50".to_string(),
        "p90".to_string(),
        "p99".to_string(),
        "max".to_string(),
    ]];
    for s in &ranked {
        rows.push(vec![
            s.name.to_string(),
            ns(s.hist.sum),
            pct(s.hist.sum, total),
            ns(s.hist.quantile(0.50)),
            ns(s.hist.quantile(0.90)),
            ns(s.hist.quantile(0.99)),
            ns(s.hist.max),
        ]);
    }
    out.push_str(&table(&rows));

    // Top offenders: which locations and links carry the most traced age.
    for (key, title) in [
        ("by_loc", "top locations by traced age"),
        ("by_link", "top links by traced age"),
    ] {
        let Some(items) = section.get(key).and_then(Json::as_arr) else {
            continue;
        };
        if items.is_empty() {
            continue;
        }
        let mut entries: Vec<(String, Vec<Stage>, u64)> = items
            .iter()
            .filter_map(|row| {
                let label = if key == "by_loc" {
                    format!("loc {}", num(row.get("loc").and_then(Json::as_f64)?))
                } else {
                    format!(
                        "{}->{}",
                        num(row.get("writer").and_then(Json::as_f64)?),
                        num(row.get("reader").and_then(Json::as_f64)?),
                    )
                };
                let stages = row.get("stages").map(stages_of)?;
                let sum = stages.iter().map(|s| s.hist.sum).sum();
                Some((label, stages, sum))
            })
            .collect();
        entries.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        out.push_str(&format!("\n{title}:\n"));
        let mut rows = vec![vec![
            String::new(),
            "total".to_string(),
            "share".to_string(),
            "releases".to_string(),
            "guilty stage".to_string(),
        ]];
        for (label, stages, sum) in entries.iter().take(TOP) {
            let released: u64 = stages
                .iter()
                .find(|s| s.name == "apply")
                .map_or(0, |s| s.hist.count);
            let guilty_cell = match guilty(stages) {
                Some((name, gsum)) => format!("{name} ({})", pct(gsum, *sum)),
                None => "-".to_string(),
            };
            rows.push(vec![
                label.clone(),
                ns(*sum),
                pct(*sum, total),
                num(released as f64),
                guilty_cell,
            ]);
        }
        out.push_str(&table(&rows));
        if entries.len() > TOP {
            out.push_str(&format!("  … {} more\n", entries.len() - TOP));
        }
    }
    (out, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::path::PathBuf;

    fn report(doc: &str) -> Report {
        Report {
            path: PathBuf::from("BENCH_t.json"),
            root: parse(doc).unwrap(),
        }
    }

    fn hist(count: u64, sum: u64, max: u64) -> String {
        format!(
            r#"{{"count":{count},"sum":{sum},"min":0,"max":{max},"mean":0.0,
                "p50":0,"p99":0,"buckets":[[{},{count}]]}}"#,
            max.next_power_of_two().saturating_sub(1).max(1)
        )
    }

    fn stage_set(sums: [u64; 7]) -> String {
        let parts: Vec<String> = STAGES
            .iter()
            .zip(sums)
            .map(|(name, sum)| format!(r#""{name}_ns":{}"#, hist(2, sum, sum.max(1))))
            .collect();
        format!("{{{}}}", parts.join(","))
    }

    #[test]
    fn untraced_report_points_at_the_env_var() {
        let rep = report(r#"{"schema_version":7,"name":"t","metrics":{},"staleness":null}"#);
        let (text, violations) = anatomy(&rep);
        assert_eq!(violations, 0);
        assert!(text.contains("rerun with NSCC_STALENESS=1"), "{text}");
    }

    #[test]
    fn stage_table_ranks_by_total_and_names_the_guilty_stage() {
        let doc = format!(
            r#"{{"schema_version":7,"name":"t","metrics":{{}},"staleness":{{
                "released":2,"conservation_checked":2,"conservation_violations":0,
                "flows_kept":2,"flows_dropped":0,
                "age_ns":{},
                "stages":{},
                "by_loc":[{{"loc":3,"stages":{}}}],
                "by_link":[{{"writer":0,"reader":1,"stages":{}}}]}}}}"#,
            hist(2, 10_000, 6_000),
            stage_set([100, 200, 6_000, 1_000, 400, 1_300, 1_000]),
            stage_set([100, 200, 6_000, 1_000, 400, 1_300, 1_000]),
            stage_set([100, 200, 6_000, 1_000, 400, 1_300, 1_000]),
        );
        let (text, violations) = anatomy(&report(&doc));
        assert_eq!(violations, 0);
        assert!(text.contains("traced releases: 2"), "{text}");
        assert!(
            text.contains("all stage sums equal the observed age"),
            "{text}"
        );
        // transit (6000ns of the 10000ns total) must rank first at 60%.
        let transit_at = text.find("transit").expect("transit row");
        let queue_at = text.find("queue").expect("queue row");
        assert!(transit_at < queue_at, "{text}");
        assert!(text.contains("60.0%"), "{text}");
        assert!(text.contains("top locations by traced age"), "{text}");
        assert!(text.contains("loc 3"), "{text}");
        assert!(text.contains("0->1"), "{text}");
        assert!(text.contains("transit (60.0%)"), "{text}");
        // Deterministic output: same input renders the same bytes.
        assert_eq!(text, anatomy(&report(&doc)).0);
    }

    #[test]
    fn conservation_leak_is_loud_and_nonzero() {
        let doc = format!(
            r#"{{"schema_version":7,"name":"t","metrics":{{}},"staleness":{{
                "released":5,"conservation_checked":5,"conservation_violations":2,
                "flows_kept":5,"flows_dropped":0,
                "age_ns":{},"stages":{},"by_loc":[],"by_link":[]}}}}"#,
            hist(5, 50_000, 20_000),
            stage_set([0, 0, 40_000, 0, 0, 0, 10_000]),
        );
        let (text, violations) = anatomy(&report(&doc));
        assert_eq!(violations, 2);
        assert!(text.contains("CONSERVATION LEAK: 2 of 5"), "{text}");
    }

    #[test]
    fn armed_but_idle_tracer_renders_cleanly() {
        let rep = report(
            r#"{"schema_version":7,"name":"t","metrics":{},"staleness":{
                "released":0,"conservation_checked":0,"conservation_violations":0,
                "flows_kept":0,"flows_dropped":0,
                "age_ns":{"count":0,"sum":0,"min":0,"max":0,"mean":0.0,"buckets":[]},
                "stages":{},"by_loc":[],"by_link":[]}}"#,
        );
        let (text, violations) = anatomy(&rep);
        assert_eq!(violations, 0);
        assert!(text.contains("no blocked read released"), "{text}");
    }
}
