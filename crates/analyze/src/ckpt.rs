//! `nscc inspect --ckpt`: list the generations of an on-disk checkpoint
//! store — virtual cut time, size, checksum and per-node iteration
//! vector per generation, with corrupt files flagged instead of hidden.
//!
//! The store layout is [`nscc_ckpt::CkptStore`]'s: one `gen-NNNNNN.nsck`
//! file per generation. Both the sweep bins' per-cell checkpoints
//! (`NSCC_CKPT_DIR`) and any other store written through `nscc-ckpt`
//! render the same way.

use std::path::Path;

use nscc_ckpt::CkptStore;

use crate::fmt::{ns, table};

/// Render the generation listing of the checkpoint store at `dir` (or of
/// a bench subdirectory inside it). Errors are strings ready for stderr.
pub fn inspect_ckpt_dir(dir: &Path) -> Result<String, String> {
    if !dir.is_dir() {
        return Err(format!("{}: not a directory", dir.display()));
    }
    // A bench-style NSCC_CKPT_DIR holds one subdirectory per binary;
    // descend into each so `nscc inspect --ckpt ck` shows everything.
    let mut stores: Vec<std::path::PathBuf> = Vec::new();
    let has_gens = |d: &Path| {
        std::fs::read_dir(d).map_or(false, |entries| {
            entries
                .flatten()
                .any(|e| e.file_name().to_string_lossy().ends_with(".nsck"))
        })
    };
    if has_gens(dir) {
        stores.push(dir.to_path_buf());
    } else {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() && has_gens(&p) {
                stores.push(p);
            }
        }
        stores.sort();
    }
    if stores.is_empty() {
        return Ok(format!(
            "checkpoint store {}: no generations\n",
            dir.display()
        ));
    }

    let mut out = String::new();
    for (i, store_dir) in stores.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let store = CkptStore::open(store_dir).map_err(|e| e.to_string())?;
        let gens = store.generations().map_err(|e| e.to_string())?;
        let intact = gens.iter().filter(|g| g.ok()).count();
        out.push_str(&format!(
            "checkpoint store {} ({} generation(s), {} intact):\n",
            store_dir.display(),
            gens.len(),
            intact
        ));
        let mut rows = vec![vec![
            "gen".to_string(),
            "kind".to_string(),
            "t".to_string(),
            "bytes".to_string(),
            "checksum".to_string(),
            "iters".to_string(),
            "status".to_string(),
        ]];
        for g in &gens {
            let iters = g
                .iters
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            rows.push(vec![
                g.gen.to_string(),
                g.kind.label().to_string(),
                ns(g.t_ns),
                g.bytes.to_string(),
                format!("{:016x}", g.checksum),
                format!("[{iters}]"),
                g.error.clone().unwrap_or_else(|| "ok".to_string()),
            ]);
        }
        out.push_str(&table(&rows));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("nscc-analyze-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn lists_generations_and_flags_corruption() {
        let dir = tmpdir("list");
        let store = CkptStore::open(&dir).unwrap();
        store.save(0, 1_000_000, &[12, 13], b"cell-a").unwrap();
        let p = store.save(1, 2_000_000, &[14], b"cell-b").unwrap();
        let mut data = std::fs::read(&p).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        std::fs::write(&p, &data).unwrap();

        let text = inspect_ckpt_dir(&dir).unwrap();
        assert!(text.contains("2 generation(s), 1 intact"), "{text}");
        assert!(text.contains("[12,13]"), "{text}");
        assert!(text.contains("checksum"), "{text}");
        assert!(text.contains("ok"), "{text}");
        assert!(text.contains("stop-world"), "{text}");
        assert!(text.to_lowercase().contains("checksum mismatch"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn labels_consistent_cut_generations() {
        use nscc_ckpt::{save_cut, CutFrame, GlobalCut};
        let dir = tmpdir("cut");
        let store = CkptStore::open(&dir).unwrap();
        store.save(3, 1_000, &[9], b"stop-world frame").unwrap();
        let cut = GlobalCut {
            id: 6,
            frames: vec![CutFrame {
                rank: 0,
                gen: 6,
                state: vec![1, 2, 3],
                inflight: Vec::new(),
            }],
        };
        save_cut(&store, &cut, 2_000).unwrap();
        let text = inspect_ckpt_dir(&dir).unwrap();
        assert!(text.contains("stop-world"), "{text}");
        assert!(text.contains("consistent-cut"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn descends_into_bench_subdirectories() {
        let dir = tmpdir("sub");
        let store = CkptStore::open(dir.join("fault_study")).unwrap();
        store.save(0, 500, &[1], b"x").unwrap();
        let text = inspect_ckpt_dir(&dir).unwrap();
        assert!(text.contains("fault_study"), "{text}");
        assert!(text.contains("1 generation(s), 1 intact"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_an_error_and_empty_dir_is_not() {
        assert!(inspect_ckpt_dir(Path::new("/nonexistent-nscc")).is_err());
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let text = inspect_ckpt_dir(&dir).unwrap();
        assert!(text.contains("no generations"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
