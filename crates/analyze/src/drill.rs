//! `nscc drill`: render the recovery story of a run report — what the
//! consistent-snapshot protocol and the crash supervisor did — and
//! re-verify the drill's headline invariant (warm-restore rollback stays
//! within the `Global_Read` age bound) from the report alone.
//!
//! The input is any `BENCH_*.json` with a non-null `recovery` section,
//! canonically `BENCH_drill.json` from the `drill` bench binary. Reports
//! whose runs never enabled snapshots or supervision render a hint
//! instead of failing, mirroring `nscc audit`.

use crate::fmt::{ns, num, table};
use crate::json::Json;
use crate::report::Report;

/// Render one report's recovery section. Returns the rendered text and
/// the number of problems found — a rollback past the report's `age`
/// parameter, or coherence-monitor violations recorded alongside — so
/// the CLI can exit 1 on a failed drill.
pub fn drill(rep: &Report) -> (String, u64) {
    let mut out = format!("drill {} ({})\n", rep.name(), rep.path.display());
    let section = match rep.root.get("recovery") {
        Some(s) if !matches!(s, Json::Null) => s,
        _ => {
            out.push_str(
                "  no recovery section — run a bench with snapshots/supervision on \
                 (e.g. the `drill` binary) to populate it\n",
            );
            return (out, 0);
        }
    };

    let get = |key: &str| section.get(key).and_then(Json::as_u64).unwrap_or(0);
    let started = get("snapshots_started");
    let completed = get("snapshots_completed");
    let restores = get("restores");
    let cut_restores = get("cut_restores");
    let give_ups = get("give_ups");
    let max_rollback = get("max_rollback");

    let mut rows = vec![vec!["what".to_string(), "count".to_string()]];
    for (what, v) in [
        ("marker waves started", started),
        ("consistent cuts completed", completed),
        ("in-flight updates recorded", get("inflight_recorded")),
        ("restores (total)", restores),
        ("restores served from a cut", cut_restores),
        ("restarts approved", get("restarts_approved")),
        ("islands retired (budget exhausted)", give_ups),
    ] {
        rows.push(vec![what.to_string(), num(v as f64)]);
    }
    rows.push(vec![
        "largest restart backoff".to_string(),
        ns(get("max_backoff_ns")),
    ]);
    rows.push(vec![
        "largest rollback (generations)".to_string(),
        num(max_rollback as f64),
    ]);
    out.push_str(&table(&rows));

    let failed: Vec<String> = section
        .get("failed_ranks")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(Json::as_u64)
        .map(|r| r.to_string())
        .collect();
    if !failed.is_empty() {
        out.push_str(&format!(
            "  degraded: rank(s) {} abandoned after exhausting their restart budget; \
             the survivors completed the run\n",
            failed.join(", ")
        ));
    }

    let mut problems = 0u64;
    // The headline invariant: rollback never exceeds the staleness the
    // age bound already tolerates. The drill bin records the bound as
    // the `age` parameter; reports without it skip the check.
    if let Some(age) = rep
        .root
        .get("params")
        .and_then(|p| p.get("age"))
        .and_then(Json::as_u64)
    {
        if max_rollback > age {
            problems += 1;
            out.push_str(&format!(
                "ROLLBACK BOUND BROKEN: a restore rolled back {max_rollback} \
                 generation(s) against an age bound of {age}\n"
            ));
        }
    }
    // An audited drill carries the monitors' verdict; surface it here so
    // `nscc drill` alone decides pass/fail.
    if let Some(v) = rep
        .root
        .get("audit")
        .and_then(|a| a.get("violations"))
        .and_then(Json::as_u64)
    {
        if v > 0 {
            problems += v;
            out.push_str(&format!(
                "AUDIT VIOLATIONS: {} recorded during the drill (see `nscc audit`)\n",
                num(v as f64)
            ));
        }
    }
    if problems == 0 {
        out.push_str(&format!(
            "PASS: {completed}/{started} wave(s) completed, {restores} restore(s) \
             ({cut_restores} from cuts), rollback ≤ bound\n"
        ));
    }
    (out, problems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::path::PathBuf;

    fn write_temp(name: &str, body: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("nscc_drill_{name}_{}", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(body.as_bytes()).unwrap();
        path
    }

    fn report(body: &str) -> Report {
        let p = write_temp("rep.json", body);
        let rep = Report::load(&p).unwrap();
        std::fs::remove_file(p).ok();
        rep
    }

    #[test]
    fn renders_a_passing_drill() {
        let rep = report(
            r#"{"schema_version":6,"name":"drill","params":{"age":5},
                "audit":{"violations":0},
                "recovery":{"snapshots_started":10,"snapshots_completed":9,
                "inflight_recorded":42,"cut_restores":2,"restores":4,
                "restarts_approved":3,"give_ups":1,"failed_ranks":[1],
                "max_backoff_ns":2000000,"max_rollback":3}}"#,
        );
        let (text, problems) = drill(&rep);
        assert_eq!(problems, 0, "{text}");
        assert!(text.contains("PASS"), "{text}");
        assert!(text.contains("9"), "{text}");
        assert!(text.contains("rank(s) 1 abandoned"), "{text}");
        assert!(text.contains("2.00ms"), "{text}");
    }

    #[test]
    fn flags_rollback_past_the_age_bound_and_audit_violations() {
        let rep = report(
            r#"{"schema_version":6,"name":"drill","params":{"age":5},
                "audit":{"violations":2},
                "recovery":{"snapshots_started":1,"snapshots_completed":1,
                "inflight_recorded":0,"cut_restores":0,"restores":1,
                "restarts_approved":1,"give_ups":0,"failed_ranks":[],
                "max_backoff_ns":0,"max_rollback":9}}"#,
        );
        let (text, problems) = drill(&rep);
        assert_eq!(problems, 3, "{text}");
        assert!(text.contains("ROLLBACK BOUND BROKEN"), "{text}");
        assert!(text.contains("AUDIT VIOLATIONS"), "{text}");
        assert!(!text.contains("PASS"), "{text}");
    }

    #[test]
    fn missing_recovery_section_hints_instead_of_failing() {
        let rep = report(r#"{"schema_version":6,"name":"fig2","recovery":null}"#);
        let (text, problems) = drill(&rep);
        assert_eq!(problems, 0);
        assert!(text.contains("no recovery section"), "{text}");
    }
}
