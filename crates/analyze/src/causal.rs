//! `nscc heat` and `nscc why`: the read side of the causal-attribution
//! sections a v3 run report carries.
//!
//! * [`heat`] renders the per-location staleness heatmap (`obs.heat`):
//!   one row per DSM location, one column per log₂ age bucket, cell
//!   intensity proportional to how often reads of that location observed
//!   that staleness.
//! * [`why`] walks the aggregated causal dependency edges (`obs.deps`)
//!   and answers the question the raw timeline cannot: *which writer's
//!   update to which location released this process's blocked reads, and
//!   where did the waiting time actually go* (queued for the medium vs in
//!   flight vs added by retransmissions).
//!
//! Both render deterministically (sorted rows, fixed formatting), so
//! their output can be golden-tested.

use std::collections::BTreeMap;

use crate::fmt::{ns, table};
use crate::hist::HistView;
use crate::json::Json;
use crate::report::Report;

/// One aggregated dependency edge, mirroring the writer-side `DepEdge`.
#[derive(Debug, Clone)]
struct Edge {
    reader: u32,
    loc: u32,
    writer: u32,
    blocks: u64,
    block_ns: u64,
    queued_ns: u64,
    inflight_ns: u64,
    retrans_ns: u64,
    last_write_iter: u64,
    last_msg_seq: u64,
}

fn name_map(rep: &Report, key: &str) -> BTreeMap<u32, String> {
    rep.root
        .get("obs")
        .and_then(|o| o.get(key))
        .and_then(Json::as_obj)
        .map(|members| {
            members
                .iter()
                .filter_map(|(k, v)| Some((k.parse().ok()?, v.as_str()?.to_string())))
                .collect()
        })
        .unwrap_or_default()
}

fn named(names: &BTreeMap<u32, String>, id: u32, fallback: &str) -> String {
    names
        .get(&id)
        .cloned()
        .unwrap_or_else(|| format!("{fallback}{id}"))
}

fn edges(rep: &Report) -> Vec<Edge> {
    let Some(deps) = rep
        .root
        .get("obs")
        .and_then(|o| o.get("deps"))
        .and_then(Json::as_arr)
    else {
        return Vec::new();
    };
    let u = |e: &Json, k: &str| e.get(k).and_then(Json::as_u64).unwrap_or(0);
    deps.iter()
        .map(|e| Edge {
            reader: u(e, "reader") as u32,
            loc: u(e, "loc") as u32,
            writer: u(e, "writer") as u32,
            blocks: u(e, "blocks"),
            block_ns: u(e, "block_ns"),
            queued_ns: u(e, "queued_ns"),
            inflight_ns: u(e, "inflight_ns"),
            retrans_ns: u(e, "retrans_ns"),
            last_write_iter: u(e, "last_write_iter"),
            last_msg_seq: u(e, "last_msg_seq"),
        })
        .collect()
}

// ------------------------------------------------------------------- heat

/// Render the per-location staleness heatmap of a run report.
pub fn heat(rep: &Report) -> String {
    let mut out = format!(
        "staleness heatmap {} (schema v{})\n",
        rep.path.display(),
        rep.schema_version()
    );
    let rows: Vec<(u32, HistView)> = rep
        .root
        .get("obs")
        .and_then(|o| o.get("heat"))
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|r| {
                    Some((
                        r.get("loc")?.as_u64()? as u32,
                        HistView::from_json(r.get("staleness")?)?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    if rows.is_empty() {
        out.push_str("no per-location staleness data (pre-v3 report, or a run with no reads)\n");
        return out;
    }
    let loc_names = name_map(rep, "loc_names");

    // Column set: the union of populated log₂ buckets across locations.
    let mut uppers: Vec<u64> = rows
        .iter()
        .flat_map(|(_, h)| h.buckets.iter().map(|&(u, _)| u))
        .collect();
    uppers.sort_unstable();
    uppers.dedup();

    // Intensity is relative to the hottest cell of each row, so every
    // location's distribution is visible regardless of read volume.
    const SHADES: [char; 5] = ['.', ':', '*', '#', '@'];
    let mut trows = vec![{
        let mut h = vec!["locn".to_string()];
        h.extend(uppers.iter().map(|u| format!("<={u}")));
        h.push("reads".to_string());
        h.push("mean".to_string());
        h.push("p99".to_string());
        h
    }];
    for (loc, hist) in &rows {
        let counts: BTreeMap<u64, u64> = hist.buckets.iter().copied().collect();
        let hottest = counts.values().copied().max().unwrap_or(0);
        let mut row = vec![named(&loc_names, *loc, "loc")];
        for u in &uppers {
            let c = counts.get(u).copied().unwrap_or(0);
            row.push(if c == 0 || hottest == 0 {
                " ".to_string()
            } else {
                let idx = (c * SHADES.len() as u64).div_ceil(hottest) as usize;
                SHADES[idx.clamp(1, SHADES.len()) - 1].to_string()
            });
        }
        row.push(hist.count.to_string());
        row.push(format!("{:.1}", hist.mean));
        row.push(hist.quantile(0.99).to_string());
        trows.push(row);
    }
    out.push_str(&format!(
        "\nobserved staleness (iterations) per location, {} locations\n",
        rows.len()
    ));
    out.push_str(&table(&trows));
    out.push_str(&format!(
        "cell intensity {} = fraction of that location's reads in the bucket\n",
        SHADES.iter().collect::<String>()
    ));
    out
}

// -------------------------------------------------------------------- why

/// Resolve a `--proc` / `--locn` selector: a raw id or a registered name.
fn resolve(sel: &str, names: &BTreeMap<u32, String>, what: &str) -> Result<u32, String> {
    if let Ok(id) = sel.parse::<u32>() {
        return Ok(id);
    }
    names
        .iter()
        .find(|(_, n)| n.as_str() == sel)
        .map(|(id, _)| *id)
        .ok_or_else(|| {
            let known: Vec<&str> = names.values().map(String::as_str).collect();
            format!(
                "unknown {what} `{sel}` (known: {})",
                if known.is_empty() {
                    "none".to_string()
                } else {
                    known.join(", ")
                }
            )
        })
}

/// Walk the causal dependency edges of a run report: for the selected
/// process (default: the one that spent the most virtual time blocked),
/// print its blocking dependencies ranked by blocked time, each naming
/// the releasing writer, location, and last releasing `write_iter`, with
/// the queued / in-flight / retransmit breakdown of the releasing frames.
pub fn why(rep: &Report, proc_sel: Option<&str>, loc_sel: Option<&str>) -> Result<String, String> {
    let mut out = format!(
        "causal read attribution {} (schema v{})\n",
        rep.path.display(),
        rep.schema_version()
    );
    let all = edges(rep);
    if all.is_empty() {
        out.push_str(
            "no causal-dependency data: pre-v3 report, observability detached, \
             or no read ever blocked\n",
        );
        return Ok(out);
    }
    let proc_names = name_map(rep, "proc_names");
    let loc_names = name_map(rep, "loc_names");

    // Per-reader blocked totals (over every edge, pre-filter) give the
    // default selection and the context line.
    let mut totals: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for e in &all {
        let t = totals.entry(e.reader).or_default();
        t.0 += e.blocks;
        t.1 += e.block_ns;
    }
    let reader = match proc_sel {
        Some(sel) => resolve(sel, &proc_names, "process")?,
        None => {
            // Most-blocked process; ties break to the lowest pid (BTreeMap
            // order), keeping the output deterministic.
            *totals
                .iter()
                .max_by_key(|&(pid, &(_, ns))| (ns, u32::MAX - *pid))
                .map(|(pid, _)| pid)
                .expect("edges imply at least one reader")
        }
    };
    let loc_filter = match loc_sel {
        Some(sel) => Some(resolve(sel, &loc_names, "location")?),
        None => None,
    };

    let (blocks, blocked_ns) = totals.get(&reader).copied().unwrap_or((0, 0));
    out.push_str(&format!(
        "{}process: {} (pid {}) — {} blocking reads, {} blocked\n",
        if proc_sel.is_none() {
            "most-blocked "
        } else {
            ""
        },
        named(&proc_names, reader, "pid"),
        reader,
        blocks,
        ns(blocked_ns)
    ));

    let mut mine: Vec<&Edge> = all
        .iter()
        .filter(|e| e.reader == reader && loc_filter.map_or(true, |l| e.loc == l))
        .collect();
    if mine.is_empty() {
        out.push_str("no blocking dependencies match the selection\n");
        return Ok(out);
    }
    // Rank by blocked time; ties break by (loc, writer) for determinism.
    mine.sort_by_key(|e| (u64::MAX - e.block_ns, e.loc, e.writer));

    out.push_str("\nblocking dependencies (by blocked time):\n");
    for (i, e) in mine.iter().enumerate() {
        out.push_str(&format!(
            "  #{} {} <- writer {} (pid {}): {} blocks, {} blocked\n",
            i + 1,
            named(&loc_names, e.loc, "loc"),
            named(&proc_names, e.writer, "pid"),
            e.writer,
            e.blocks,
            ns(e.block_ns)
        ));
        out.push_str(&format!(
            "     releasing frames: queued {} | in-flight {} | retransmit-delayed {}\n",
            ns(e.queued_ns),
            ns(e.inflight_ns),
            ns(e.retrans_ns)
        ));
        // `u64::MAX` is the DSM's retirement sentinel (the writer's final
        // "infinitely fresh" publish), not a real iteration number.
        if e.last_write_iter == u64::MAX {
            out.push_str(&format!(
                "     last release: retirement (writer left), msg_seq {}\n",
                e.last_msg_seq
            ));
        } else {
            out.push_str(&format!(
                "     last release: write_iter {}, msg_seq {}\n",
                e.last_write_iter, e.last_msg_seq
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::path::PathBuf;

    fn write_temp(name: &str, body: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("nscc_causal_{name}"));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(body.as_bytes()).unwrap();
        path
    }

    /// A v3 report with two locations, two readers, and one retransmitted
    /// releasing frame — shared by the golden tests below.
    fn sample() -> Report {
        let path = write_temp(
            "v3.json",
            r#"{"schema_version":3,"name":"unit","metrics":{},
                "obs":{
                  "heat":[
                    {"loc":0,"staleness":{"count":10,"sum":12,"min":0,"max":3,
                      "mean":1.2,"p50":1,"p99":3,"buckets":[[0,4],[1,4],[3,2]]}},
                    {"loc":1,"staleness":{"count":2,"sum":8,"min":4,"max":4,
                      "mean":4.0,"p50":4,"p99":4,"buckets":[[7,2]]}}],
                  "deps":[
                    {"reader":2,"loc":0,"writer":0,"blocks":3,"block_ns":1200000,
                     "queued_ns":10000,"inflight_ns":500000,"retrans_ns":0,
                     "last_write_iter":41,"last_msg_seq":1042},
                    {"reader":2,"loc":1,"writer":1,"blocks":1,"block_ns":9000000,
                     "queued_ns":2000,"inflight_ns":800000,"retrans_ns":10000000,
                     "last_write_iter":18446744073709551615,"last_msg_seq":55},
                    {"reader":3,"loc":0,"writer":0,"blocks":1,"block_ns":40000,
                     "queued_ns":0,"inflight_ns":40000,"retrans_ns":0,
                     "last_write_iter":12,"last_msg_seq":90}],
                  "loc_names":{"0":"best","1":"mig1"},
                  "proc_names":{"0":"island0","1":"island1","2":"island2","3":"island3"}
                }}"#,
        );
        Report::load(&path).unwrap()
    }

    #[test]
    fn why_defaults_to_the_most_blocked_process() {
        let rep = sample();
        let text = why(&rep, None, None).unwrap();
        // island2 has 10.2ms total blocked vs island3's 40us.
        assert!(
            text.contains("most-blocked process: island2 (pid 2)"),
            "{text}"
        );
        // Its top dependency is the retransmitted mig1 frame from island1.
        let golden = "\
blocking dependencies (by blocked time):
  #1 mig1 <- writer island1 (pid 1): 1 blocks, 9.00ms blocked
     releasing frames: queued 2.00us | in-flight 800.00us | retransmit-delayed 10.00ms
     last release: retirement (writer left), msg_seq 55
  #2 best <- writer island0 (pid 0): 3 blocks, 1.20ms blocked
     releasing frames: queued 10.00us | in-flight 500.00us | retransmit-delayed 0ns
     last release: write_iter 41, msg_seq 1042
";
        assert!(text.ends_with(golden), "golden mismatch:\n{text}");
        std::fs::remove_file(&rep.path).ok();
    }

    #[test]
    fn why_resolves_names_and_filters_by_location() {
        let rep = sample();
        let text = why(&rep, Some("island3"), None).unwrap();
        assert!(text.contains("process: island3 (pid 3)"), "{text}");
        assert!(text.contains("write_iter 12, msg_seq 90"), "{text}");
        let text = why(&rep, Some("2"), Some("best")).unwrap();
        assert!(text.contains("#1 best <- writer island0"), "{text}");
        assert!(!text.contains("mig1 <- writer"), "{text}");
        let err = why(&rep, Some("nobody"), None).unwrap_err();
        assert!(err.contains("unknown process `nobody`"), "{err}");
        std::fs::remove_file(&rep.path).ok();
    }

    #[test]
    fn heat_renders_one_row_per_location() {
        let rep = sample();
        let text = heat(&rep);
        assert!(text.contains("2 locations"), "{text}");
        assert!(text.contains("best"), "{text}");
        assert!(text.contains("mig1"), "{text}");
        // best's hottest buckets (4 of 4) render at full intensity.
        let best_row = text.lines().find(|l| l.contains("best")).unwrap();
        assert!(best_row.contains('@'), "{best_row}");
        std::fs::remove_file(&rep.path).ok();
    }

    #[test]
    fn degrade_gracefully_on_pre_v3_reports() {
        let path = write_temp(
            "v2.json",
            r#"{"schema_version":2,"name":"old","metrics":{}}"#,
        );
        let rep = Report::load(&path).unwrap();
        assert!(heat(&rep).contains("no per-location staleness data"));
        assert!(why(&rep, None, None)
            .unwrap()
            .contains("no causal-dependency data"));
        std::fs::remove_file(path).ok();
    }
}
