//! Loading and flattening of `BENCH_*.json` run reports and
//! `TRACE_*.json` event dumps.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::json::{parse, Json};

/// The newest export schema this analyzer understands. Must track
/// `nscc_obs::SCHEMA_VERSION` (the analyzer is dependency-free by design,
/// so the constant is mirrored here; `tests/observability.rs` in the
/// workspace root pins the two together). Every version since
/// [`MIN_SCHEMA_VERSION`] is additive, so older documents load too — a
/// v2 report simply has no heatmap/dependency/profile sections, a v3 one
/// no `wall` scheduler-accounting section, a v4 one no `audit`
/// coherence-auditor section, a v5 one no `recovery`
/// snapshot/supervision section, a v6 one no `staleness`
/// anatomy section.
pub const SCHEMA_VERSION: u64 = 7;

/// The oldest export schema this analyzer still reads.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Every top-level key this analyzer's subcommands know how to render,
/// across run reports, event dumps and flight dumps. Used by the lenient
/// loaders ([`Report::load_lenient`]) to tell the user which sections of
/// a newer-schema document they are skipping, instead of refusing the
/// file outright.
pub const KNOWN_SECTIONS: &[&str] = &[
    // Run reports.
    "schema_version",
    "name",
    "params",
    "metrics",
    "dsm",
    "net",
    "comm",
    "fault_reports",
    "degraded",
    "obs",
    "recovery",
    "wall",
    "audit",
    "staleness",
    // Event dumps.
    "proc_names",
    "events_dropped",
    "spans_dropped",
    "events",
    "spans",
    // Flight dumps.
    "kind",
    "bench",
    "seed",
    "reason",
    "capacity",
    "violations",
];

/// A loaded, schema-checked JSON artifact (run report or event dump).
#[derive(Debug, Clone)]
pub struct Report {
    /// Where it was loaded from.
    pub path: PathBuf,
    /// The parsed document.
    pub root: Json,
}

impl Report {
    /// Load and schema-check one artifact. Accepts any version in
    /// `MIN_SCHEMA_VERSION..=SCHEMA_VERSION` (schema growth is additive;
    /// sections an old writer never emitted simply render empty) and
    /// refuses anything newer or unstamped — guessing at missing or
    /// renamed keys produces silently wrong analyses, so those are hard,
    /// explained errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Report, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
        let root = parse(text.trim()).map_err(|e| format!("{}: {e}", path.display()))?;
        match root.get("schema_version").and_then(Json::as_u64) {
            Some(v) if (MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&v) => {}
            Some(v) => {
                return Err(format!(
                    "{}: schema version {v} but this nscc-analyze understands only \
                     versions {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}; re-run the \
                     benchmark with a matching toolchain or upgrade nscc-analyze",
                    path.display()
                ))
            }
            None => {
                return Err(format!(
                    "{}: no schema_version field — not an NSCC run report or event \
                     dump (or one predating schema stamping)",
                    path.display()
                ))
            }
        }
        Ok(Report {
            path: path.to_path_buf(),
            root,
        })
    }

    /// Like [`load`](Report::load), but *forward-compatible*: a document
    /// stamped with a schema **newer** than [`SCHEMA_VERSION`] loads
    /// anyway. Read-only renderers (`nscc inspect`, `nscc diff`) use this
    /// — every schema bump so far has been additive, so the sections this
    /// analyzer knows still render correctly and the caller surfaces the
    /// ones it doesn't via [`unknown_sections`](Report::unknown_sections)
    /// as a one-line note instead of a hard exit. Enforcement paths
    /// (`nscc gate`) stay on the strict loader: silently half-comparing a
    /// newer report could pass a regression.
    pub fn load_lenient(path: impl AsRef<Path>) -> Result<Report, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
        let root = parse(text.trim()).map_err(|e| format!("{}: {e}", path.display()))?;
        match root.get("schema_version").and_then(Json::as_u64) {
            Some(v) if v >= MIN_SCHEMA_VERSION => {}
            Some(v) => {
                return Err(format!(
                    "{}: schema version {v} predates the oldest supported export \
                     ({MIN_SCHEMA_VERSION})",
                    path.display()
                ))
            }
            None => {
                return Err(format!(
                    "{}: no schema_version field — not an NSCC run report or event \
                     dump (or one predating schema stamping)",
                    path.display()
                ))
            }
        }
        Ok(Report {
            path: path.to_path_buf(),
            root,
        })
    }

    /// Top-level keys this analyzer has no renderer for, in document
    /// order. Non-empty only for documents written by a newer schema than
    /// [`SCHEMA_VERSION`] (or hand-edited ones); callers print them as a
    /// one-line "skipping sections …" note.
    pub fn unknown_sections(&self) -> Vec<String> {
        let Some(members) = self.root.as_obj() else {
            return Vec::new();
        };
        members
            .iter()
            .filter(|(k, _)| !KNOWN_SECTIONS.contains(&k.as_str()))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// The document's stamped `schema_version` (validated by
    /// [`load`](Report::load), so always within the accepted range).
    pub fn schema_version(&self) -> u64 {
        self.root
            .get("schema_version")
            .and_then(Json::as_u64)
            .unwrap_or(SCHEMA_VERSION)
    }

    /// The report's `name` field, or the file stem as a fallback.
    pub fn name(&self) -> String {
        self.root
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| {
                self.path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default()
            })
    }

    /// True when the artifact is a raw event dump (`TRACE_*.json`) rather
    /// than a run report.
    pub fn is_event_dump(&self) -> bool {
        self.root.get("events").is_some() && self.root.get("metrics").is_none()
    }

    /// One top-level object as a string → number map (empty when absent).
    pub fn numeric_map(&self, key: &str) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        if let Some(members) = self.root.get(key).and_then(Json::as_obj) {
            for (k, v) in members {
                if let Some(n) = v.as_f64() {
                    out.insert(k.clone(), n);
                }
            }
        }
        out
    }

    /// Every numeric scalar in the report as a dotted-path map:
    /// `metrics.p4_age=5`, `dsm.blocked_reads`, `obs.staleness.p99`, ….
    /// Arrays (bucket lists, snapshot series, raw streams) are skipped —
    /// their lengths are run-shape, not performance, and the gate compares
    /// scalars.
    pub fn flatten(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        flatten_into(&self.root, String::new(), &mut out);
        out
    }
}

fn flatten_into(v: &Json, prefix: String, out: &mut BTreeMap<String, f64>) {
    match v {
        Json::Num(n) => {
            out.insert(prefix, *n);
        }
        Json::Obj(members) => {
            for (k, v) in members {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(v, path, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn write_temp(name: &str, body: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("nscc_analyze_{name}"));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(body.as_bytes()).unwrap();
        path
    }

    #[test]
    fn loads_and_flattens_a_report() {
        let path = write_temp(
            "ok.json",
            r#"{"schema_version":2,"name":"unit","params":{"runs":3},
                "metrics":{"speedup":2.5},"obs":{"reads":7,"staleness":
                {"count":1,"sum":2,"min":2,"max":2,"mean":2.0,"p50":2,
                 "p99":2,"buckets":[[3,1]]}}}"#,
        );
        let rep = Report::load(&path).unwrap();
        assert_eq!(rep.name(), "unit");
        assert!(!rep.is_event_dump());
        assert_eq!(rep.numeric_map("metrics")["speedup"], 2.5);
        let flat = rep.flatten();
        assert_eq!(flat["metrics.speedup"], 2.5);
        assert_eq!(flat["obs.staleness.p99"], 2.0);
        assert_eq!(flat["obs.reads"], 7.0);
        assert!(!flat.keys().any(|k| k.contains("buckets")));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn accepts_older_schemas_refuses_newer_or_missing() {
        // Older documents predate newer sections (causal attribution,
        // wall accounting) but remain loadable (the schema grows
        // additively).
        for v in 1..=7u64 {
            let p = write_temp(
                &format!("v{v}.json"),
                &format!(r#"{{"schema_version":{v},"name":"x"}}"#),
            );
            let rep = Report::load(&p).unwrap_or_else(|e| panic!("v{v}: {e}"));
            assert_eq!(rep.schema_version(), v);
            std::fs::remove_file(p).ok();
        }
        let newer = write_temp("v8.json", r#"{"schema_version":8,"name":"x"}"#);
        let err = Report::load(&newer).unwrap_err();
        assert!(err.contains("schema version 8"), "{err}");
        assert!(err.contains("1..=7"), "{err}");
        let none = write_temp("none.json", r#"{"name":"x"}"#);
        let err = Report::load(&none).unwrap_err();
        assert!(err.contains("no schema_version"), "{err}");
        std::fs::remove_file(newer).ok();
        std::fs::remove_file(none).ok();
    }

    #[test]
    fn lenient_load_accepts_newer_schemas_and_names_unknown_sections() {
        // A future writer stamps v99 and adds a section this analyzer
        // has never heard of: the lenient loader still reads the file and
        // reports exactly the foreign keys, so read-only commands can
        // render what they know and note what they skipped.
        let p = write_temp(
            "future.json",
            r#"{"schema_version":99,"name":"x","metrics":{"m":1.0},
                "hologram":{"qubits":3},"metrics2":[]}"#,
        );
        let err = Report::load(&p).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
        let rep = Report::load_lenient(&p).expect("lenient load succeeds");
        assert_eq!(rep.schema_version(), 99);
        assert_eq!(rep.unknown_sections(), vec!["hologram", "metrics2"]);
        std::fs::remove_file(p).ok();

        // Current-schema documents have no unknown sections, and garbage
        // is still refused.
        let ok = write_temp("now.json", r#"{"schema_version":7,"name":"x"}"#);
        assert!(Report::load_lenient(&ok)
            .unwrap()
            .unknown_sections()
            .is_empty());
        std::fs::remove_file(ok).ok();
        let none = write_temp("lenient_none.json", r#"{"name":"x"}"#);
        assert!(Report::load_lenient(&none)
            .unwrap_err()
            .contains("no schema_version"));
        std::fs::remove_file(none).ok();
    }

    #[test]
    fn detects_event_dumps() {
        let path = write_temp(
            "dump.json",
            r#"{"schema_version":2,"proc_names":{},"events_dropped":0,
                "spans_dropped":0,"events":[],"spans":[]}"#,
        );
        assert!(Report::load(&path).unwrap().is_event_dump());
        std::fs::remove_file(path).ok();
    }
}
