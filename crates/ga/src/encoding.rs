//! Binary genomes and DeJong's fixed-point decoding.

use rand::Rng;
use serde::Serialize;

use crate::functions::TestFn;

/// A fixed-length bit string stored packed (LSB-first within each byte).
///
/// Serializes compactly, so [`nscc_msg::wire_size`] charges migrants their
/// true encoded size.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct Genome {
    bits: usize,
    bytes: Vec<u8>,
}

impl Genome {
    /// An all-zero genome of `bits` bits.
    pub fn zeros(bits: usize) -> Self {
        Genome {
            bits,
            bytes: vec![0u8; bits.div_ceil(8)],
        }
    }

    /// A uniformly random genome of `bits` bits.
    pub fn random(bits: usize, rng: &mut impl Rng) -> Self {
        let mut g = Genome::zeros(bits);
        for b in &mut g.bytes {
            *b = rng.gen();
        }
        // Clear the padding bits so Eq/Hash are canonical.
        g.mask_tail();
        g
    }

    fn mask_tail(&mut self) {
        let used = self.bits % 8;
        if used != 0 {
            if let Some(last) = self.bytes.last_mut() {
                *last &= (1u8 << used) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// True if the genome has zero bits.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.bits);
        self.bytes[i / 8] & (1 << (i % 8)) != 0
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.bits);
        let mask = 1u8 << (i % 8);
        if v {
            self.bytes[i / 8] |= mask;
        } else {
            self.bytes[i / 8] &= !mask;
        }
    }

    /// Flip bit `i`.
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.bits);
        self.bytes[i / 8] ^= 1 << (i % 8);
    }

    /// Single-point crossover at `point` (bits `< point` from `self`, the
    /// rest from `other`). Returns the two children.
    pub fn crossover(&self, other: &Genome, point: usize) -> (Genome, Genome) {
        assert_eq!(self.bits, other.bits, "crossover of unequal genomes");
        assert!(point <= self.bits);
        let mut a = self.clone();
        let mut b = other.clone();
        for i in point..self.bits {
            let (sa, sb) = (self.get(i), other.get(i));
            a.set(i, sb);
            b.set(i, sa);
        }
        (a, b)
    }

    /// Flip each bit independently with probability `rate`.
    pub fn mutate(&mut self, rate: f64, rng: &mut impl Rng) -> usize {
        let mut flipped = 0;
        for i in 0..self.bits {
            if rng.gen::<f64>() < rate {
                self.flip(i);
                flipped += 1;
            }
        }
        flipped
    }

    /// Decode an unsigned integer from bits `[start, start+width)`
    /// (big-endian: the first bit is the most significant).
    pub fn decode_uint(&self, start: usize, width: usize) -> u64 {
        assert!(width <= 64 && start + width <= self.bits);
        let mut v = 0u64;
        for i in 0..width {
            v = (v << 1) | self.get(start + i) as u64;
        }
        v
    }

    /// Byte representation (for cache keys).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl nscc_ckpt::Snapshot for Genome {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u64(self.bits as u64);
        enc.put_bytes(&self.bytes);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        let bits = dec.u64()? as usize;
        let bytes = dec.bytes()?.to_vec();
        if bytes.len() != bits.div_ceil(8) {
            return Err(nscc_ckpt::CkptError::Malformed(format!(
                "genome of {bits} bits carries {} bytes",
                bytes.len()
            )));
        }
        let mut g = Genome { bits, bytes };
        // Canonicalize padding so Eq/Hash behave even for a checkpoint
        // written by a buggy or hostile encoder.
        g.mask_tail();
        Ok(g)
    }
}

/// Decode a genome into `f`'s decision variables under DeJong's coding:
/// each variable is `bits_per_var` bits mapped affinely onto `[lo, hi]`.
pub fn decode(f: TestFn, genome: &Genome) -> Vec<f64> {
    let w = f.bits_per_var();
    assert_eq!(
        genome.len(),
        f.genome_bits(),
        "{}: genome length mismatch",
        f.name()
    );
    let (lo, hi) = f.limits();
    let denom = ((1u64 << w) - 1) as f64;
    (0..f.dims())
        .map(|i| {
            let raw = genome.decode_uint(i * w, w) as f64;
            lo + (hi - lo) * raw / denom
        })
        .collect()
}

/// Evaluate `f` directly on a genome (decode + eval, deterministic part).
pub fn eval_genome(f: TestFn, genome: &Genome) -> f64 {
    f.eval(&decode(f, genome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_decode_to_lower_limit() {
        for f in crate::functions::ALL_FUNCTIONS {
            let g = Genome::zeros(f.genome_bits());
            let x = decode(f, &g);
            let (lo, _) = f.limits();
            assert!(x.iter().all(|&v| (v - lo).abs() < 1e-12), "{}", f.name());
        }
    }

    #[test]
    fn ones_decode_to_upper_limit() {
        for f in crate::functions::ALL_FUNCTIONS {
            let mut g = Genome::zeros(f.genome_bits());
            for i in 0..g.len() {
                g.set(i, true);
            }
            let x = decode(f, &g);
            let (_, hi) = f.limits();
            assert!(x.iter().all(|&v| (v - hi).abs() < 1e-12), "{}", f.name());
        }
    }

    #[test]
    fn decode_uint_is_big_endian() {
        let mut g = Genome::zeros(8);
        g.set(0, true); // MSB of the first 4-bit field
        assert_eq!(g.decode_uint(0, 4), 8);
        g.set(3, true);
        assert_eq!(g.decode_uint(0, 4), 9);
        assert_eq!(g.decode_uint(4, 4), 0);
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut g = Genome::zeros(19);
        g.set(0, true);
        g.set(18, true);
        assert!(g.get(0) && g.get(18) && !g.get(9));
        g.flip(18);
        assert!(!g.get(18));
    }

    #[test]
    fn crossover_exchanges_tails() {
        let mut a = Genome::zeros(10);
        let mut b = Genome::zeros(10);
        for i in 0..10 {
            a.set(i, true);
            b.set(i, false);
        }
        let (c, d) = a.crossover(&b, 4);
        for i in 0..10 {
            assert_eq!(c.get(i), i < 4);
            assert_eq!(d.get(i), i >= 4);
        }
    }

    #[test]
    fn crossover_at_extremes_is_identity_or_swap() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Genome::random(32, &mut rng);
        let b = Genome::random(32, &mut rng);
        let (c, d) = a.crossover(&b, 32);
        assert_eq!((c, d), (a.clone(), b.clone()));
        let (c, d) = a.crossover(&b, 0);
        assert_eq!((c, d), (b, a));
    }

    #[test]
    fn mutation_rate_zero_and_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let g0 = Genome::random(64, &mut rng);
        let mut g = g0.clone();
        assert_eq!(g.mutate(0.0, &mut rng), 0);
        assert_eq!(g, g0);
        let flipped = g.mutate(1.0, &mut rng);
        assert_eq!(flipped, 64);
        for i in 0..64 {
            assert_eq!(g.get(i), !g0.get(i));
        }
    }

    #[test]
    fn random_genomes_have_canonical_padding() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for bits in [1, 7, 8, 9, 30] {
            let g = Genome::random(bits, &mut rng);
            // Reconstructing from the same visible bits must compare equal.
            let mut h = Genome::zeros(bits);
            for i in 0..bits {
                h.set(i, g.get(i));
            }
            assert_eq!(g, h);
        }
    }

    #[test]
    fn wire_size_is_compact() {
        let g = Genome::zeros(100);
        // 8 (usize) + 4 (len prefix) + 13 bytes of payload.
        assert_eq!(nscc_msg::wire_size(&g), 8 + 4 + 13);
    }
}
