//! GA parameters (§4.2.1): the six-parameter family of DeJong [5].

/// Parent-selection strategy. The paper's experiments use elitist
/// roulette selection over window-scaled fitness; tournament and rank
/// selection are provided as library extensions (they behave better on
/// functions whose raw fitness spans many orders of magnitude).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Roulette wheel over window-scaled fitness (DeJong; the paper).
    RouletteWindow,
    /// k-tournament: sample `k` individuals, keep the best.
    Tournament {
        /// Tournament size (≥ 1; 2 is the classic binary tournament).
        k: usize,
    },
    /// Linear rank selection.
    Rank,
}

/// The GA parameter set used throughout the paper's experiments:
/// `N=50, C=0.6, M=0.001, G=1, W=1, S=E`.
#[derive(Debug, Clone)]
pub struct GaParams {
    /// Population size per deme (N).
    pub pop_size: usize,
    /// Crossover rate (C): probability a selected pair is recombined.
    pub crossover_rate: f64,
    /// Mutation rate (M): per-bit flip probability.
    pub mutation_rate: f64,
    /// Generation gap (G): fraction of the population replaced each
    /// generation (1.0 = full replacement).
    pub generation_gap: f64,
    /// Scaling window (W): fitness scaling baseline is the worst raw
    /// fitness seen in the last W generations.
    pub scaling_window: usize,
    /// Elitist strategy (S = E): the best individual always survives.
    pub elitist: bool,
    /// Parent-selection strategy.
    pub selection: Selection,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams {
            pop_size: 50,
            crossover_rate: 0.6,
            mutation_rate: 0.001,
            generation_gap: 1.0,
            scaling_window: 1,
            elitist: true,
            selection: Selection::RouletteWindow,
        }
    }
}

impl GaParams {
    /// The paper's settings but with a different population size
    /// (the serial baseline scales N with the processor count).
    pub fn with_pop_size(pop_size: usize) -> Self {
        GaParams {
            pop_size,
            ..GaParams::default()
        }
    }

    /// Validate ranges; panics with a clear message on nonsense.
    pub fn validate(&self) {
        assert!(self.pop_size >= 2, "population must hold at least 2");
        assert!(
            (0.0..=1.0).contains(&self.crossover_rate),
            "crossover rate must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.mutation_rate),
            "mutation rate must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.generation_gap),
            "generation gap must be in [0, 1]"
        );
        assert!(self.scaling_window >= 1, "scaling window must be >= 1");
        if let Selection::Tournament { k } = self.selection {
            assert!(k >= 1, "tournament size must be >= 1");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = GaParams::default();
        assert_eq!(p.pop_size, 50);
        assert_eq!(p.crossover_rate, 0.6);
        assert_eq!(p.mutation_rate, 0.001);
        assert_eq!(p.generation_gap, 1.0);
        assert_eq!(p.scaling_window, 1);
        assert!(p.elitist);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "population")]
    fn tiny_population_rejected() {
        GaParams::with_pop_size(1).validate();
    }
}

#[cfg(test)]
mod selection_tests {
    use super::*;

    #[test]
    fn tournament_validation() {
        let p = GaParams {
            selection: Selection::Tournament { k: 3 },
            ..GaParams::default()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "tournament")]
    fn zero_tournament_rejected() {
        GaParams {
            selection: Selection::Tournament { k: 0 },
            ..GaParams::default()
        }
        .validate();
    }
}
