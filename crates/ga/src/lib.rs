//! # nscc-ga — genetic algorithms for the NSCC reproduction
//!
//! Everything §3.1/§4.2.1 of the paper needs:
//!
//! * [`TestFn`] — the eight-function minimization test bed of Table 1
//!   (DeJong F1–F5, Mühlenbein F6–F8).
//! * [`Genome`]/[`decode`] — DeJong's fixed-point binary coding with
//!   single-point crossover and bitwise mutation.
//! * [`Deme`] — one sub-population under the paper's parameter set
//!   (N=50, C=0.6, M=0.001, G=1, W=1, elitist), with the
//!   fitness-caching optimization of the paper's serial baseline
//!   ([`FitnessCache`]).
//! * [`SerialGa`] — the optimized sequential baseline (population scaled
//!   to `50 × p`).
//! * [`run_island`] — the island-model parallel GA over the DSM: each
//!   generation broadcasts the best N/2 individuals and incorporates
//!   migrants under a [`Coherence`](nscc_dsm::Coherence) discipline
//!   (synchronous / fully asynchronous / `Global_Read` with an age).
//! * [`CostModel`] — calibrated virtual-CPU-time accounting, including
//!   load-skew jitter (see DESIGN.md §2).

#![warn(missing_docs)]

mod cache;
mod cost;
mod encoding;
mod functions;
mod island;
mod params;
mod population;
mod serial;
mod supervise;

pub use cache::FitnessCache;
pub use cost::CostModel;
pub use encoding::{decode, eval_genome, Genome};
pub use functions::{TestFn, ALL_FUNCTIONS};
pub use island::{
    run_island, ConvergenceBoard, IslandConfig, IslandOutcome, MigrantBatch, RecoveryPlan,
    RecoveryStyle, StopPolicy, Topology,
};
pub use params::{GaParams, Selection};
pub use population::{Deme, DemeState, GenWork, Individual};
pub use serial::{SerialGa, SerialResult};
pub use supervise::{Decision, RecoverySummary, Supervisor, SupervisorPolicy};
