//! The compute-cost model: converts GA work into virtual CPU time.
//!
//! The paper measured real seconds on 77 MHz RS/6000-591 nodes; we charge
//! calibrated virtual time per unit of GA work instead (see DESIGN.md §2).
//! The model includes multiplicative jitter and rare "hiccups" — transient
//! OS/daemon interference — because load skew between nodes is one of the
//! two effects `Global_Read` tolerates (the other being network delay).

use rand::rngs::StdRng;
use rand::Rng;

use nscc_sim::SimTime;

use crate::population::GenWork;

/// Cost parameters for one node's CPU.
///
/// Hiccups follow a hazard model: a charged interval of `b` compute
/// seconds stalls with probability `hiccup_rate_per_sec × b`, adding
/// `hiccup_stall`. The serial baseline runs under the same model, so the
/// comparison is fair; what differs is how each coherence discipline
/// *reacts* to a stalled peer.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// CPU time per true fitness evaluation (decode + objective).
    pub eval_cost: SimTime,
    /// CPU time per cache-hit lookup.
    pub cache_hit_cost: SimTime,
    /// CPU time per individual for selection/crossover/mutation.
    pub per_individual: SimTime,
    /// Multiplicative jitter half-width: each generation's cost is scaled
    /// by `U(1-j, 1+j)` (0 disables).
    pub jitter: f64,
    /// Hiccups per second of compute (0 disables).
    pub hiccup_rate_per_sec: f64,
    /// Stall added by one hiccup.
    pub hiccup_stall: SimTime,
}

impl Default for CostModel {
    /// Calibrated for a 77 MHz POWER2: ~150 µs per evaluation (bit decode
    /// plus a transcendental-heavy objective), 3 µs per cache hit, 20 µs
    /// of genetic-operator work per individual, ±20% jitter, and a
    /// ~300 ms stall roughly every 3 s of compute (daemon noise; a stall
    /// spans tens of generations — the load skew Global_Read absorbs).
    fn default() -> Self {
        CostModel {
            eval_cost: SimTime::from_micros(150),
            cache_hit_cost: SimTime::from_micros(3),
            per_individual: SimTime::from_micros(20),
            jitter: 0.2,
            hiccup_rate_per_sec: 0.3,
            hiccup_stall: SimTime::from_millis(300),
        }
    }
}

impl CostModel {
    /// A deterministic model with no jitter or hiccups (for tests and
    /// ablations).
    pub fn deterministic() -> Self {
        CostModel {
            jitter: 0.0,
            hiccup_rate_per_sec: 0.0,
            ..CostModel::default()
        }
    }

    /// The virtual CPU time of one generation that performed `work`.
    pub fn generation_cost(&self, work: GenWork, rng: &mut StdRng) -> SimTime {
        let base = self.eval_cost * work.evals
            + self.cache_hit_cost * work.cache_hits
            + self.per_individual * work.individuals;
        let mut out = base;
        if self.jitter > 0.0 {
            let scale = 1.0 - self.jitter + 2.0 * self.jitter * rng.gen::<f64>();
            out = SimTime::from_secs_f64(base.as_secs_f64() * scale);
        }
        if self.hiccup_rate_per_sec > 0.0
            && rng.gen::<f64>() < self.hiccup_rate_per_sec * base.as_secs_f64()
        {
            out += self.hiccup_stall;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn work() -> GenWork {
        GenWork {
            evals: 40,
            cache_hits: 10,
            individuals: 50,
        }
    }

    #[test]
    fn deterministic_model_is_linear() {
        let m = CostModel::deterministic();
        let mut rng = StdRng::seed_from_u64(0);
        let c = m.generation_cost(work(), &mut rng);
        let expected = SimTime::from_micros(40 * 150 + 10 * 3 + 50 * 20);
        assert_eq!(c, expected);
        // No randomness consumed paths change the answer.
        assert_eq!(m.generation_cost(work(), &mut rng), expected);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let m = CostModel {
            jitter: 0.2,
            hiccup_rate_per_sec: 0.0,
            ..CostModel::default()
        };
        let base = CostModel::deterministic()
            .generation_cost(work(), &mut StdRng::seed_from_u64(0))
            .as_secs_f64();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let c = m.generation_cost(work(), &mut rng).as_secs_f64();
            assert!(
                c >= base * 0.799 && c <= base * 1.201,
                "c = {c}, base = {base}"
            );
        }
    }

    #[test]
    fn hiccups_occur_at_roughly_the_hazard_rate() {
        let m = CostModel {
            jitter: 0.0,
            hiccup_rate_per_sec: 20.0,
            hiccup_stall: SimTime::from_millis(50),
            ..CostModel::default()
        };
        let base = CostModel::deterministic()
            .generation_cost(work(), &mut StdRng::seed_from_u64(0))
            .as_secs_f64();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 5000;
        let hiccups = (0..n)
            .filter(|_| m.generation_cost(work(), &mut rng).as_secs_f64() > base + 0.01)
            .count();
        // Expected: 20/s * base * n stalls.
        let expected = 20.0 * base * n as f64;
        assert!(
            (hiccups as f64) > expected * 0.5 && (hiccups as f64) < expected * 1.5,
            "hiccups {hiccups} vs expected {expected}"
        );
    }
}
