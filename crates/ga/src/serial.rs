//! The optimized serial GA baseline (single deme, fitness cache, virtual
//! time accumulated through the cost model).

use rand::rngs::StdRng;
use rand::SeedableRng;

use nscc_sim::SimTime;

use crate::cost::CostModel;
use crate::functions::TestFn;
use crate::params::GaParams;
use crate::population::{Deme, GenWork};

/// Result of a serial GA run.
#[derive(Debug, Clone)]
pub struct SerialResult {
    /// Best fitness ever observed.
    pub best: f64,
    /// Virtual CPU time of the whole run.
    pub time: SimTime,
    /// Generations executed.
    pub generations: u64,
    /// Best-ever fitness after each generation (index 0 = after gen 1).
    pub history: Vec<f64>,
    /// Cumulative virtual time after each generation (parallel to
    /// `history`).
    pub time_history: Vec<SimTime>,
    /// Total work performed.
    pub work: GenWork,
}

impl SerialResult {
    /// The best-ever fitness after `fraction` of the run (used to derive
    /// the quality target parallel runs must reach; see DESIGN.md).
    pub fn quality_at_fraction(&self, fraction: f64) -> f64 {
        if self.history.is_empty() {
            return self.best;
        }
        let idx = ((self.history.len() as f64 * fraction.clamp(0.0, 1.0)).ceil() as usize)
            .clamp(1, self.history.len());
        self.history[idx - 1]
    }

    /// The virtual time at which the run first reached quality `target`
    /// (`None` if it never did). This is the serial side of the
    /// time-to-quality comparison.
    pub fn time_to_quality(&self, target: f64) -> Option<SimTime> {
        self.history
            .iter()
            .position(|&b| b <= target)
            .map(|i| self.time_history[i])
    }
}

/// The serial GA: one deme of the *total* population size (the paper
/// scales total population linearly with processor count, so the serial
/// baseline for `p` processors runs `p * 50` individuals).
pub struct SerialGa {
    deme: Deme,
    rng: StdRng,
    cost: CostModel,
    time: SimTime,
    history: Vec<f64>,
    time_history: Vec<SimTime>,
}

impl SerialGa {
    /// Build a serial GA over `func` with the given parameters and cost
    /// model; `seed` determines the initial population and all stochastic
    /// choices.
    pub fn new(func: TestFn, params: GaParams, cost: CostModel, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let deme = Deme::new(func, params, &mut rng);
        SerialGa {
            deme,
            rng,
            cost,
            time: SimTime::ZERO,
            history: Vec::new(),
            time_history: Vec::new(),
        }
    }

    /// Run exactly `generations` generations.
    pub fn run(mut self, generations: u64) -> SerialResult {
        for _ in 0..generations {
            let work = self.deme.step(&mut self.rng);
            self.time += self.cost.generation_cost(work, &mut self.rng);
            self.history.push(self.deme.best_ever().fitness);
            self.time_history.push(self.time);
        }
        SerialResult {
            best: self.deme.best_ever().fitness,
            time: self.time,
            generations,
            history: self.history,
            time_history: self.time_history,
            work: self.deme.total_work(),
        }
    }

    /// Run until the best-ever fitness reaches `target` (or `max_gens`).
    /// Returns the result with `generations` set to what was actually run.
    pub fn run_to_target(mut self, target: f64, max_gens: u64) -> SerialResult {
        let mut gens = 0;
        while gens < max_gens && self.deme.best_ever().fitness > target {
            let work = self.deme.step(&mut self.rng);
            self.time += self.cost.generation_cost(work, &mut self.rng);
            self.history.push(self.deme.best_ever().fitness);
            self.time_history.push(self.time);
            gens += 1;
        }
        SerialResult {
            best: self.deme.best_ever().fitness,
            time: self.time,
            generations: gens,
            history: self.history,
            time_history: self.time_history,
            work: self.deme.total_work(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_run_accumulates_time_and_history() {
        let r = SerialGa::new(
            TestFn::F1Sphere,
            GaParams::default(),
            CostModel::deterministic(),
            42,
        )
        .run(50);
        assert_eq!(r.generations, 50);
        assert_eq!(r.history.len(), 50);
        assert!(r.time > SimTime::ZERO);
        // History of best-ever is non-increasing.
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(r.best, *r.history.last().expect("nonempty history"));
    }

    #[test]
    fn bigger_populations_cost_more_time() {
        let time = |n: usize| {
            SerialGa::new(
                TestFn::F1Sphere,
                GaParams::with_pop_size(n),
                CostModel::deterministic(),
                1,
            )
            .run(20)
            .time
        };
        assert!(time(200) > time(50) * 2);
    }

    #[test]
    fn quality_at_fraction_is_monotone() {
        let r = SerialGa::new(
            TestFn::F6Rastrigin,
            GaParams::default(),
            CostModel::deterministic(),
            3,
        )
        .run(100);
        assert!(r.quality_at_fraction(0.5) >= r.quality_at_fraction(1.0));
        assert_eq!(r.quality_at_fraction(1.0), r.best);
    }

    #[test]
    fn run_to_target_stops_early() {
        // Target the initial best: zero further generations needed... use a
        // modest improvement target instead.
        let probe = SerialGa::new(
            TestFn::F1Sphere,
            GaParams::default(),
            CostModel::deterministic(),
            4,
        )
        .run(1);
        let target = probe.best; // quality after one generation
        let r = SerialGa::new(
            TestFn::F1Sphere,
            GaParams::default(),
            CostModel::deterministic(),
            4,
        )
        .run_to_target(target, 1000);
        assert!(r.generations <= 1);
        assert!(r.best <= target);
    }
}
