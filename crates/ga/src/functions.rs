//! The eight-function GA test bed of Table 1 (DeJong F1–F5 [5] and the
//! Mühlenbein et al. extensions F6–F8 [13]).
//!
//! All functions are *minimized*. F3 carries DeJong's customary `+30`
//! offset so its minimum is 0 as Table 1 states; F4's Gauss(0,1) noise is
//! injected by the evaluator (see [`TestFn::eval_noisy`]) so the
//! deterministic part can be tested exactly.

use std::f64::consts::PI;

/// One benchmark function: identity, domain, encoding and known optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestFn {
    /// F1: sphere, 3 vars in [-5.12, 5.12], min 0 at the origin.
    F1Sphere,
    /// F2: Rosenbrock's saddle, 2 vars in [-2.048, 2.048], min 0 at (1,1).
    F2Rosenbrock,
    /// F3: step function (+30 offset), 5 vars in [-5.12, 5.12], min 0.
    F3Step,
    /// F4: quartic with Gaussian noise, 30 vars in [-1.28, 1.28],
    /// deterministic part minimized at 0.
    F4QuarticNoise,
    /// F5: Shekel's foxholes, 2 vars in [-65.536, 65.536], min ≈ 0.998004.
    F5Foxholes,
    /// F6: Rastrigin, 20 vars in [-5.12, 5.12], min 0 at the origin.
    F6Rastrigin,
    /// F7: Schwefel, 10 vars in [-500, 500], min ≈ −4189.829 at 420.9687.
    F7Schwefel,
    /// F8: Griewank, 10 vars in [-600, 600], min 0 at the origin.
    F8Griewank,
}

/// All eight functions in Table 1 order.
pub const ALL_FUNCTIONS: [TestFn; 8] = [
    TestFn::F1Sphere,
    TestFn::F2Rosenbrock,
    TestFn::F3Step,
    TestFn::F4QuarticNoise,
    TestFn::F5Foxholes,
    TestFn::F6Rastrigin,
    TestFn::F7Schwefel,
    TestFn::F8Griewank,
];

/// Foxhole grid coordinates: `a[0][j]`, `a[1][j]` for j in 0..25.
fn foxhole_a(i: usize, j: usize) -> f64 {
    const VALS: [f64; 5] = [-32.0, -16.0, 0.0, 16.0, 32.0];
    match i {
        0 => VALS[j % 5],
        _ => VALS[j / 5],
    }
}

impl TestFn {
    /// Table 1 row number (1-based).
    pub fn number(self) -> usize {
        match self {
            TestFn::F1Sphere => 1,
            TestFn::F2Rosenbrock => 2,
            TestFn::F3Step => 3,
            TestFn::F4QuarticNoise => 4,
            TestFn::F5Foxholes => 5,
            TestFn::F6Rastrigin => 6,
            TestFn::F7Schwefel => 7,
            TestFn::F8Griewank => 8,
        }
    }

    /// Conventional name.
    pub fn name(self) -> &'static str {
        match self {
            TestFn::F1Sphere => "sphere",
            TestFn::F2Rosenbrock => "rosenbrock",
            TestFn::F3Step => "step",
            TestFn::F4QuarticNoise => "quartic-noise",
            TestFn::F5Foxholes => "foxholes",
            TestFn::F6Rastrigin => "rastrigin",
            TestFn::F7Schwefel => "schwefel",
            TestFn::F8Griewank => "griewank",
        }
    }

    /// Number of decision variables.
    pub fn dims(self) -> usize {
        match self {
            TestFn::F1Sphere => 3,
            TestFn::F2Rosenbrock => 2,
            TestFn::F3Step => 5,
            TestFn::F4QuarticNoise => 30,
            TestFn::F5Foxholes => 2,
            TestFn::F6Rastrigin => 20,
            TestFn::F7Schwefel => 10,
            TestFn::F8Griewank => 10,
        }
    }

    /// Domain `[lo, hi]` shared by all variables (Table 1 "Limits").
    pub fn limits(self) -> (f64, f64) {
        match self {
            TestFn::F1Sphere | TestFn::F3Step | TestFn::F6Rastrigin => (-5.12, 5.12),
            TestFn::F2Rosenbrock => (-2.048, 2.048),
            TestFn::F4QuarticNoise => (-1.28, 1.28),
            TestFn::F5Foxholes => (-65.536, 65.536),
            TestFn::F7Schwefel => (-500.0, 500.0),
            TestFn::F8Griewank => (-600.0, 600.0),
        }
    }

    /// Bits per variable under DeJong's fixed-point binary coding (chosen
    /// so the grid step is ~0.01 of the native scale of each domain).
    pub fn bits_per_var(self) -> usize {
        match self {
            TestFn::F1Sphere | TestFn::F3Step | TestFn::F6Rastrigin => 10,
            TestFn::F2Rosenbrock => 12,
            TestFn::F4QuarticNoise => 8,
            TestFn::F5Foxholes => 17,
            TestFn::F7Schwefel => 10,
            TestFn::F8Griewank => 10,
        }
    }

    /// Total genome length in bits.
    pub fn genome_bits(self) -> usize {
        self.dims() * self.bits_per_var()
    }

    /// The known global minimum value (Table 1 "min f(x)"), for the
    /// noiseless part in F4's case.
    pub fn known_min(self) -> f64 {
        match self {
            TestFn::F1Sphere
            | TestFn::F2Rosenbrock
            | TestFn::F3Step
            | TestFn::F6Rastrigin
            | TestFn::F8Griewank => 0.0,
            TestFn::F4QuarticNoise => 0.0, // noiseless part; Table 1 lists ≤ -2.5 with noise
            TestFn::F5Foxholes => 0.998_003_838,
            TestFn::F7Schwefel => -4189.828_872_724_34,
        }
    }

    /// A point attaining the known minimum (for tests).
    pub fn argmin(self) -> Vec<f64> {
        match self {
            TestFn::F1Sphere
            | TestFn::F4QuarticNoise
            | TestFn::F6Rastrigin
            | TestFn::F8Griewank => {
                vec![0.0; self.dims()]
            }
            TestFn::F2Rosenbrock => vec![1.0, 1.0],
            // Any point with floor(x_i) = -6, e.g. -5.12 exactly at the edge.
            TestFn::F3Step => vec![-5.12; 5],
            TestFn::F5Foxholes => vec![-32.0, -32.0],
            TestFn::F7Schwefel => vec![420.9687; 10],
        }
    }

    /// Evaluate the deterministic part of the function at `x`.
    /// Panics if `x.len() != dims()`.
    pub fn eval(self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.dims(),
            "{}: wrong dimensionality",
            self.name()
        );
        match self {
            TestFn::F1Sphere => x.iter().map(|v| v * v).sum(),
            TestFn::F2Rosenbrock => {
                let (x1, x2) = (x[0], x[1]);
                100.0 * (x1 * x1 - x2).powi(2) + (1.0 - x1).powi(2)
            }
            TestFn::F3Step => 30.0 + x.iter().map(|v| v.floor()).sum::<f64>(),
            TestFn::F4QuarticNoise => x
                .iter()
                .enumerate()
                .map(|(i, v)| (i + 1) as f64 * v.powi(4))
                .sum(),
            TestFn::F5Foxholes => {
                let mut s = 0.002;
                for j in 0..25 {
                    let mut denom = (j + 1) as f64;
                    for (i, &xi) in x.iter().enumerate() {
                        denom += (xi - foxhole_a(i, j)).powi(6);
                    }
                    s += 1.0 / denom;
                }
                1.0 / s
            }
            TestFn::F6Rastrigin => {
                let a = 10.0;
                let n = x.len() as f64;
                n * a
                    + x.iter()
                        .map(|v| v * v - a * (2.0 * PI * v).cos())
                        .sum::<f64>()
            }
            TestFn::F7Schwefel => x.iter().map(|v| -v * v.abs().sqrt().sin()).sum(),
            TestFn::F8Griewank => {
                let s: f64 = x.iter().map(|v| v * v / 4000.0).sum();
                let p: f64 = x
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v / ((i + 1) as f64).sqrt()).cos())
                    .product();
                s - p + 1.0
            }
        }
    }

    /// Evaluate with F4's additive Gauss(0,1) noise (Box–Muller over the
    /// provided uniform draws); every other function ignores the noise.
    pub fn eval_noisy(self, x: &[f64], u1: f64, u2: f64) -> f64 {
        let base = self.eval(x);
        if self == TestFn::F4QuarticNoise {
            let u1 = u1.clamp(f64::MIN_POSITIVE, 1.0);
            let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos();
            base + gauss
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_function_attains_its_known_min_at_argmin() {
        for f in ALL_FUNCTIONS {
            let v = f.eval(&f.argmin());
            assert!(
                (v - f.known_min()).abs() < 1e-3,
                "{}: eval(argmin) = {v}, expected {}",
                f.name(),
                f.known_min()
            );
        }
    }

    #[test]
    fn known_min_is_a_lower_bound_on_random_points() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for f in ALL_FUNCTIONS {
            let (lo, hi) = f.limits();
            for _ in 0..300 {
                let x: Vec<f64> = (0..f.dims()).map(|_| rng.gen_range(lo..=hi)).collect();
                let v = f.eval(&x);
                assert!(
                    v >= f.known_min() - 1e-6,
                    "{}: found {v} below the known minimum {} at {x:?}",
                    f.name(),
                    f.known_min()
                );
            }
        }
    }

    #[test]
    fn table1_metadata() {
        assert_eq!(TestFn::F1Sphere.dims(), 3);
        assert_eq!(TestFn::F4QuarticNoise.dims(), 30);
        assert_eq!(TestFn::F6Rastrigin.dims(), 20);
        assert_eq!(TestFn::F7Schwefel.limits(), (-500.0, 500.0));
        assert_eq!(TestFn::F8Griewank.limits(), (-600.0, 600.0));
        for (i, f) in ALL_FUNCTIONS.iter().enumerate() {
            assert_eq!(f.number(), i + 1);
        }
    }

    #[test]
    fn rosenbrock_classic_values() {
        // f(0,0) = 1, f(1,1) = 0, f(-1,1) = 4 for the DeJong form.
        let f = TestFn::F2Rosenbrock;
        assert!((f.eval(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(f.eval(&[1.0, 1.0]).abs() < 1e-12);
        assert!((f.eval(&[-1.0, 1.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn step_function_is_integer_valued() {
        let f = TestFn::F3Step;
        let v = f.eval(&[0.3, 1.7, -2.2, 4.9, 0.0]);
        assert_eq!(v.fract(), 0.0);
        assert_eq!(v, 30.0 + (0.0 + 1.0 - 3.0 + 4.0 + 0.0));
    }

    #[test]
    fn foxholes_near_one_at_first_foxhole() {
        let f = TestFn::F5Foxholes;
        let v = f.eval(&[-32.0, -32.0]);
        assert!((v - 0.998).abs() < 1e-2, "got {v}");
        // Far from every foxhole the function is large (≈ 1/0.002 = 500).
        let far = f.eval(&[50.0, -50.0]);
        assert!(far > 100.0, "got {far}");
    }

    #[test]
    fn rastrigin_local_structure() {
        let f = TestFn::F6Rastrigin;
        // At integer points the cosine term is maximal: f(1,0,..,0) = 1.
        let mut x = vec![0.0; 20];
        x[0] = 1.0;
        assert!((f.eval(&x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn f4_noise_is_zero_mean_ish() {
        use rand::{Rng, SeedableRng};
        let f = TestFn::F4QuarticNoise;
        let x = vec![0.0; 30];
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| f.eval_noisy(&x, rng.gen::<f64>(), rng.gen::<f64>()))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.05, "noise mean {mean} too far from 0");
    }

    #[test]
    fn noise_only_applies_to_f4() {
        let f = TestFn::F1Sphere;
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(f.eval(&x), f.eval_noisy(&x, 0.5, 0.5));
    }
}
