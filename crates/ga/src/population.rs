//! Demes (sub-populations) and the generational step: windowed fitness
//! scaling, roulette selection, single-point crossover, bitwise mutation,
//! elitism, and migrant incorporation.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::Rng;
use serde::Serialize;

use crate::cache::FitnessCache;
use crate::encoding::Genome;
use crate::functions::TestFn;
use crate::params::{GaParams, Selection};

/// One candidate solution with its (raw, minimized) fitness.
#[derive(Debug, Clone, Serialize)]
pub struct Individual {
    /// The bit-string genotype.
    pub genome: Genome,
    /// Raw objective value (lower is better).
    pub fitness: f64,
}

/// Work performed by one generational step, for the compute-cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenWork {
    /// True fitness evaluations (cache misses).
    pub evals: u64,
    /// Evaluations avoided by the fitness cache.
    pub cache_hits: u64,
    /// Individuals processed by selection/crossover/mutation.
    pub individuals: u64,
}

impl GenWork {
    /// Element-wise accumulation.
    pub fn merge(&mut self, other: GenWork) {
        self.evals += other.evals;
        self.cache_hits += other.cache_hits;
        self.individuals += other.individuals;
    }
}

impl nscc_ckpt::Snapshot for Individual {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        self.genome.encode(enc);
        enc.put_f64(self.fitness);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(Individual {
            genome: Genome::decode(dec)?,
            fitness: dec.f64()?,
        })
    }
}

impl nscc_ckpt::Snapshot for GenWork {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u64(self.evals);
        enc.put_u64(self.cache_hits);
        enc.put_u64(self.individuals);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(GenWork {
            evals: dec.u64()?,
            cache_hits: dec.u64()?,
            individuals: dec.u64()?,
        })
    }
}

/// The semantic state of a [`Deme`], extracted for checkpointing. The
/// fitness cache is deliberately excluded: it is a performance artifact
/// whose entries are recomputable, so a restored deme restarts with a cold
/// cache and identical GA behaviour (cache hits change *work accounting*,
/// never selection outcomes — lookups return the same fitness a fresh
/// evaluation would).
#[derive(Debug, Clone)]
pub struct DemeState {
    /// The population, in the deme's current internal order.
    pub pop: Vec<Individual>,
    /// The scaling window of recent worst fitnesses, oldest first.
    pub window: Vec<f64>,
    /// Generations evolved so far.
    pub generation: u64,
    /// Elitist memory.
    pub best_ever: Individual,
    /// Accumulated work counters.
    pub total_work: GenWork,
}

impl nscc_ckpt::Snapshot for DemeState {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        self.pop.encode(enc);
        self.window.encode(enc);
        enc.put_u64(self.generation);
        self.best_ever.encode(enc);
        self.total_work.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(DemeState {
            pop: Vec::<Individual>::decode(dec)?,
            window: Vec::<f64>::decode(dec)?,
            generation: dec.u64()?,
            best_ever: Individual::decode(dec)?,
            total_work: GenWork::decode(dec)?,
        })
    }
}

/// A deme: one (sub-)population evolving under the paper's GA settings.
pub struct Deme {
    func: TestFn,
    params: GaParams,
    pop: Vec<Individual>,
    /// Worst raw fitness of each of the last `W` generations (scaling
    /// baseline C_w = max over this window).
    window: VecDeque<f64>,
    generation: u64,
    best_ever: Individual,
    cache: FitnessCache,
    total_work: GenWork,
}

impl Deme {
    /// A fresh random deme. Different seeds produce disjoint initial
    /// populations (the paper initializes every deme differently).
    pub fn new(func: TestFn, params: GaParams, rng: &mut StdRng) -> Self {
        params.validate();
        let mut cache = FitnessCache::new(func);
        let mut work = GenWork::default();
        let pop: Vec<Individual> = (0..params.pop_size)
            .map(|_| {
                let genome = Genome::random(func.genome_bits(), rng);
                let (fitness, hit) = cache.fitness(&genome, rng);
                if hit {
                    work.cache_hits += 1;
                } else {
                    work.evals += 1;
                }
                Individual { genome, fitness }
            })
            .collect();
        let best_ever = pop
            .iter()
            .min_by(|a, b| a.fitness.total_cmp(&b.fitness))
            .expect("population is nonempty")
            .clone();
        let worst = pop
            .iter()
            .map(|i| i.fitness)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut window = VecDeque::new();
        window.push_back(worst);
        Deme {
            func,
            params,
            pop,
            window,
            generation: 0,
            best_ever,
            cache,
            total_work: work,
        }
    }

    /// The benchmark function this deme optimizes.
    pub fn func(&self) -> TestFn {
        self.func
    }

    /// Generations evolved so far.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current population (read-only).
    pub fn population(&self) -> &[Individual] {
        &self.pop
    }

    /// Best individual ever observed in this deme (elitist memory).
    pub fn best_ever(&self) -> &Individual {
        &self.best_ever
    }

    /// Best fitness in the *current* population.
    pub fn current_best(&self) -> f64 {
        self.pop
            .iter()
            .map(|i| i.fitness)
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean fitness of the current population (solution-quality metric).
    pub fn mean_fitness(&self) -> f64 {
        self.pop.iter().map(|i| i.fitness).sum::<f64>() / self.pop.len() as f64
    }

    /// Total work performed since construction.
    pub fn total_work(&self) -> GenWork {
        self.total_work
    }

    /// Cache statistics `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Extract the deme's semantic state for a checkpoint (see
    /// [`DemeState`] for what is and isn't captured).
    pub fn export_state(&self) -> DemeState {
        DemeState {
            pop: self.pop.clone(),
            window: self.window.iter().copied().collect(),
            generation: self.generation,
            best_ever: self.best_ever.clone(),
            total_work: self.total_work,
        }
    }

    /// Rebuild a deme from checkpointed state. `func` and `params` come
    /// from the run configuration (they are static and never encoded); the
    /// fitness cache restarts cold.
    pub fn from_state(func: TestFn, params: GaParams, state: DemeState) -> Self {
        params.validate();
        assert!(!state.pop.is_empty(), "checkpointed population is empty");
        Deme {
            func,
            params,
            pop: state.pop,
            window: state.window.into_iter().collect(),
            generation: state.generation,
            best_ever: state.best_ever,
            cache: FitnessCache::new(func),
            total_work: state.total_work,
        }
    }

    /// Evolve one generation; returns the work it cost.
    pub fn step(&mut self, rng: &mut StdRng) -> GenWork {
        let n = self.params.pop_size;
        let replace = ((n as f64 * self.params.generation_gap).round() as usize).clamp(1, n);

        // Windowed scaling: baseline is the worst fitness in the last W
        // generations; scaled fitness = baseline - raw (clamped at 0).
        let baseline = self
            .window
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = self
            .pop
            .iter()
            .map(|i| (baseline - i.fitness).max(0.0))
            .collect();
        let total_weight: f64 = weights.iter().sum();
        // Rank weights (best rank = n, worst = 1), lazily built.
        let rank_order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..self.pop.len()).collect();
            idx.sort_by(|&a, &b| self.pop[a].fitness.total_cmp(&self.pop[b].fitness));
            idx
        };

        let selection = self.params.selection;
        let pop_ref = &self.pop;
        let select = |rng: &mut StdRng| -> usize {
            match selection {
                Selection::RouletteWindow => {
                    if total_weight <= 0.0 {
                        rng.gen_range(0..pop_ref.len())
                    } else {
                        let mut t = rng.gen::<f64>() * total_weight;
                        for (i, w) in weights.iter().enumerate() {
                            t -= w;
                            if t <= 0.0 {
                                return i;
                            }
                        }
                        pop_ref.len() - 1
                    }
                }
                Selection::Tournament { k } => {
                    let mut best = rng.gen_range(0..pop_ref.len());
                    for _ in 1..k {
                        let c = rng.gen_range(0..pop_ref.len());
                        if pop_ref[c].fitness < pop_ref[best].fitness {
                            best = c;
                        }
                    }
                    best
                }
                Selection::Rank => {
                    // Linear rank: weight n for the best, 1 for the worst.
                    let n = pop_ref.len();
                    let total = n * (n + 1) / 2;
                    let mut t = rng.gen_range(0..total);
                    for (r, &i) in rank_order.iter().enumerate() {
                        let w = n - r;
                        if t < w {
                            return i;
                        }
                        t -= w;
                    }
                    rank_order[n - 1]
                }
            }
        };

        // Breed the replacement cohort.
        let bits = self.func.genome_bits();
        let mut children: Vec<Genome> = Vec::with_capacity(replace);
        while children.len() < replace {
            let p1 = select(rng);
            let p2 = select(rng);
            let (mut c1, mut c2) = if rng.gen::<f64>() < self.params.crossover_rate {
                let point = rng.gen_range(1..bits);
                self.pop[p1].genome.crossover(&self.pop[p2].genome, point)
            } else {
                (self.pop[p1].genome.clone(), self.pop[p2].genome.clone())
            };
            c1.mutate(self.params.mutation_rate, rng);
            c2.mutate(self.params.mutation_rate, rng);
            children.push(c1);
            if children.len() < replace {
                children.push(c2);
            }
        }

        // Evaluate children through the cache.
        let mut work = GenWork {
            individuals: replace as u64,
            ..GenWork::default()
        };
        let children: Vec<Individual> = children
            .into_iter()
            .map(|genome| {
                let (fitness, hit) = self.cache.fitness(&genome, rng);
                if hit {
                    work.cache_hits += 1;
                } else {
                    work.evals += 1;
                }
                Individual { genome, fitness }
            })
            .collect();

        // Replace the worst `replace` individuals when G < 1, else the
        // whole population.
        if replace == n {
            self.pop = children;
        } else {
            self.sort_worst_last();
            let keep = n - replace;
            self.pop.truncate(keep);
            self.pop.extend(children);
        }

        // Elitism: the previous best survives if everything new is worse.
        if self.params.elitist {
            let new_best = self.current_best();
            if self.best_ever.fitness < new_best {
                let worst_idx = self
                    .pop
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.fitness.total_cmp(&b.1.fitness))
                    .map(|(i, _)| i)
                    .expect("population is nonempty");
                self.pop[worst_idx] = self.best_ever.clone();
            }
        }

        self.after_change();
        self.generation += 1;
        let worst = self
            .pop
            .iter()
            .map(|i| i.fitness)
            .fold(f64::NEG_INFINITY, f64::max);
        self.window.push_back(worst);
        while self.window.len() > self.params.scaling_window {
            self.window.pop_front();
        }
        self.total_work.merge(work);
        work
    }

    /// The best `count` individuals (ascending fitness), cloned, as the
    /// outgoing migrant batch.
    pub fn migrants(&self, count: usize) -> Vec<Individual> {
        let mut sorted: Vec<&Individual> = self.pop.iter().collect();
        sorted.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
        sorted.into_iter().take(count).cloned().collect()
    }

    /// Replace the worst individuals with `migrants` — each migrant only
    /// displaces a resident that is actually worse (stale migrant batches
    /// must not poison a deme that has since moved past them).
    pub fn incorporate(&mut self, migrants: &[Individual]) {
        if migrants.is_empty() {
            return;
        }
        let mut migrants: Vec<&Individual> = migrants.iter().collect();
        migrants.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
        self.sort_worst_last();
        let n = self.pop.len();
        for (i, migrant) in migrants.iter().enumerate() {
            if i >= n {
                break;
            }
            let slot = n - 1 - i; // worst remaining resident
            if migrant.fitness < self.pop[slot].fitness {
                self.pop[slot] = (*migrant).clone();
            } else {
                break; // residents are only better from here inward
            }
        }
        self.after_change();
    }

    fn sort_worst_last(&mut self) {
        self.pop.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
    }

    fn after_change(&mut self) {
        if let Some(best) = self
            .pop
            .iter()
            .min_by(|a, b| a.fitness.total_cmp(&b.fitness))
        {
            if best.fitness < self.best_ever.fitness {
                self.best_ever = best.clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn deme(func: TestFn, seed: u64) -> (Deme, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Deme::new(func, GaParams::default(), &mut rng);
        (d, rng)
    }

    #[test]
    fn initial_population_is_evaluated() {
        let (d, _) = deme(TestFn::F1Sphere, 0);
        assert_eq!(d.population().len(), 50);
        assert!(d.population().iter().all(|i| i.fitness.is_finite()));
        assert_eq!(d.generation(), 0);
    }

    #[test]
    fn best_ever_is_monotone_under_steps() {
        let (mut d, mut rng) = deme(TestFn::F6Rastrigin, 1);
        let mut prev = d.best_ever().fitness;
        for _ in 0..30 {
            d.step(&mut rng);
            let now = d.best_ever().fitness;
            assert!(now <= prev, "best-ever regressed: {prev} -> {now}");
            prev = now;
        }
    }

    #[test]
    fn elitism_keeps_best_in_population() {
        let (mut d, mut rng) = deme(TestFn::F1Sphere, 2);
        for _ in 0..20 {
            d.step(&mut rng);
            assert!(
                d.current_best() <= d.best_ever().fitness + 1e-12,
                "elitism must keep the best individual alive"
            );
        }
    }

    #[test]
    fn ga_actually_optimizes_the_sphere() {
        let (mut d, mut rng) = deme(TestFn::F1Sphere, 3);
        let start = d.best_ever().fitness;
        for _ in 0..200 {
            d.step(&mut rng);
        }
        let end = d.best_ever().fitness;
        assert!(
            end < start * 0.2 || end < 0.05,
            "GA failed to make progress: {start} -> {end}"
        );
    }

    #[test]
    fn migrants_are_the_best_and_sorted() {
        let (d, _) = deme(TestFn::F1Sphere, 4);
        let m = d.migrants(25);
        assert_eq!(m.len(), 25);
        for w in m.windows(2) {
            assert!(w[0].fitness <= w[1].fitness);
        }
        assert_eq!(m[0].fitness, d.current_best());
    }

    #[test]
    fn incorporate_replaces_worst() {
        let (mut d, mut rng) = deme(TestFn::F1Sphere, 5);
        // Fabricate perfect migrants at the optimum.
        let hero = {
            let genome = Genome::zeros(TestFn::F1Sphere.genome_bits());
            Individual {
                genome,
                fitness: f64::MIN_POSITIVE,
            }
        };
        let worst_before = d
            .population()
            .iter()
            .map(|i| i.fitness)
            .fold(f64::NEG_INFINITY, f64::max);
        d.incorporate(&vec![hero; 10]);
        let worst_after = d
            .population()
            .iter()
            .map(|i| i.fitness)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(worst_after <= worst_before);
        assert_eq!(d.current_best(), f64::MIN_POSITIVE);
        // Migration counts as a population change, not a generation.
        assert_eq!(d.generation(), 0);
        d.step(&mut rng);
        assert_eq!(d.generation(), 1);
    }

    #[test]
    fn cache_hits_accumulate_for_survivors() {
        let (mut d, mut rng) = deme(TestFn::F3Step, 6);
        for _ in 0..50 {
            d.step(&mut rng);
        }
        let (hits, misses) = d.cache_stats();
        assert!(hits > 0, "converging GA must re-encounter genomes");
        assert!(misses > 0);
    }

    #[test]
    fn work_counters_add_up() {
        let (mut d, mut rng) = deme(TestFn::F2Rosenbrock, 7);
        let w = d.step(&mut rng);
        assert_eq!(w.individuals, 50);
        assert_eq!(w.evals + w.cache_hits, 50);
    }

    #[test]
    fn generation_gap_below_one_replaces_fewer() {
        let mut rng = StdRng::seed_from_u64(8);
        let params = GaParams {
            generation_gap: 0.2,
            ..GaParams::default()
        };
        let mut d = Deme::new(TestFn::F1Sphere, params, &mut rng);
        let w = d.step(&mut rng);
        assert_eq!(w.individuals, 10);
    }

    #[test]
    fn deterministic_evolution_per_seed() {
        let run = |seed| {
            let (mut d, mut rng) = deme(TestFn::F8Griewank, seed);
            for _ in 0..20 {
                d.step(&mut rng);
            }
            d.best_ever().fitness
        };
        assert_eq!(run(9), run(9));
    }
}

#[cfg(test)]
mod selection_behavior_tests {
    use super::*;
    use crate::params::Selection;
    use rand::SeedableRng;

    fn converges_with(selection: Selection, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = GaParams {
            selection,
            ..GaParams::default()
        };
        let mut d = Deme::new(TestFn::F1Sphere, params, &mut rng);
        for _ in 0..150 {
            d.step(&mut rng);
        }
        d.best_ever().fitness
    }

    #[test]
    fn every_selection_strategy_optimizes() {
        for s in [
            Selection::RouletteWindow,
            Selection::Tournament { k: 2 },
            Selection::Tournament { k: 4 },
            Selection::Rank,
        ] {
            let best = converges_with(s, 11);
            assert!(best < 0.2, "{s:?} failed to optimize the sphere: {best}");
        }
    }

    #[test]
    fn stronger_tournaments_select_more_greedily() {
        // With heavier selection pressure, early convergence is faster on
        // a unimodal function.
        let mut rng = StdRng::seed_from_u64(5);
        let mk = |k: usize, rng: &mut StdRng| {
            let params = GaParams {
                selection: Selection::Tournament { k },
                ..GaParams::default()
            };
            let mut d = Deme::new(TestFn::F1Sphere, params, rng);
            for _ in 0..15 {
                d.step(rng);
            }
            d.best_ever().fitness
        };
        let weak = mk(1, &mut rng); // k=1 is random selection
        let strong = mk(6, &mut rng);
        assert!(
            strong < weak,
            "6-tournament ({strong}) should beat random selection ({weak}) early"
        );
    }
}
