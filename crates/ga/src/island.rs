//! The island-model parallel GA program (§3.1, §4.2.1): one deme per
//! simulated process; every generation each island broadcasts its best
//! `N/2` individuals through the DSM and incorporates migrants from every
//! peer under the configured coherence discipline.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nscc_ckpt::Snapshot;
use nscc_dsm::{AgeController, Coherence, DsmNode, LocId, SnapConfig};
use nscc_sim::{Ctx, ObsEvent, SimTime};

use crate::supervise::{Decision, Supervisor};

use crate::cost::CostModel;
use crate::functions::TestFn;
use crate::params::GaParams;
use crate::population::{Deme, DemeState, GenWork, Individual};

/// The migrant batch exchanged between islands.
pub type MigrantBatch = Vec<Individual>;

/// Migration topology (§3.1: migration "is controlled by several
/// parameters: interval, rate, and topology"). The paper's experiments
/// broadcast to everyone; ring and random-k are the standard sparse
/// alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every island reads every other island (the paper's setup).
    AllToAll,
    /// Bidirectional ring.
    Ring,
    /// Each island's migrants reach `k` random others.
    Random {
        /// Out-degree of every island.
        k: usize,
    },
}

impl Topology {
    /// Build the migrant-location directory for this topology.
    pub fn build_directory(self, ranks: usize, seed: u64) -> (nscc_dsm::Directory, Vec<LocId>) {
        let mut dir = nscc_dsm::Directory::new();
        let locs = match self {
            Topology::AllToAll => dir.add_per_rank("best", ranks),
            Topology::Ring => dir.add_ring("best", ranks),
            Topology::Random { k } => dir.add_random_topology("best", ranks, k, seed),
        };
        (dir, locs)
    }
}

/// When an island stops evolving (§5.1: the synchronous program runs a
/// fixed 1000 generations; the asynchronous and controlled versions run
/// "for enough generations so that the subpopulation converged further
/// than the synchronous version").
#[derive(Debug, Clone, Copy)]
pub enum StopPolicy {
    /// Run exactly this many generations (the synchronous protocol).
    FixedGenerations(u64),
    /// Run until every island's best-ever fitness reaches `target`, with
    /// a hard generation `cap` for runs that never get there.
    TargetQuality {
        /// Fitness every deme must reach.
        target: f64,
        /// Generation cap.
        cap: u64,
    },
}

/// How a crashed island comes back (§4.1's recovery corollary: a node
/// restored from a snapshot at most `age` iterations old is
/// indistinguishable from a legitimately stale peer, so `Global_Read`'s
/// tolerance makes warm recovery seamless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStyle {
    /// Restore application + DSM state from the last intact checkpoint and
    /// resync from writers; rollback distance is `gen − ckpt_gen`.
    Warm,
    /// Abandon state and restart with a fresh random deme at the current
    /// generation (the cold-restart baseline warm recovery is measured
    /// against).
    Cold,
}

/// Crash/recovery schedule for one island: checkpoint cadence plus the
/// crash windows extracted from the platform's fault plan.
#[derive(Debug, Clone)]
pub struct RecoveryPlan {
    /// Cut a checkpoint every this many generations (≥ 1). Strict modes
    /// set this to the age bound, which caps warm-restore rollback at the
    /// staleness the discipline already tolerates.
    pub every: u64,
    /// `(crash_at, restart_at)` windows, sorted by crash time. During a
    /// window the fault layer drops the island's traffic; the island
    /// itself sleeps until `restart_at` and then recovers.
    pub crashes: Vec<(SimTime, SimTime)>,
    /// Warm (from checkpoint) or cold (from scratch).
    pub style: RecoveryStyle,
}

/// Everything an island checkpoint captures: the deme, the RNG reseed that
/// reproduces the post-checkpoint random stream, migration bookkeeping,
/// convergence tracking, and the node's age-tagged DSM cache.
struct IslandCkpt {
    gen: u64,
    reseed: u64,
    deme: DemeState,
    last_incorporated: Vec<u64>,
    best_seen: f64,
    last_improvement: SimTime,
    time_to_target: Option<SimTime>,
    cache: Vec<(LocId, u64, MigrantBatch)>,
}

impl Snapshot for IslandCkpt {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u64(self.gen);
        enc.put_u64(self.reseed);
        self.deme.encode(enc);
        self.last_incorporated.encode(enc);
        enc.put_f64(self.best_seen);
        self.last_improvement.encode(enc);
        self.time_to_target.encode(enc);
        self.cache.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(IslandCkpt {
            gen: dec.u64()?,
            reseed: dec.u64()?,
            deme: DemeState::decode(dec)?,
            last_incorporated: Vec::<u64>::decode(dec)?,
            best_seen: dec.f64()?,
            last_improvement: Snapshot::decode(dec)?,
            time_to_target: Option::<SimTime>::decode(dec)?,
            cache: Vec::<(LocId, u64, MigrantBatch)>::decode(dec)?,
        })
    }
}

/// Per-island configuration for one parallel GA run.
#[derive(Debug, Clone)]
pub struct IslandConfig {
    /// Objective function.
    pub func: TestFn,
    /// Per-deme GA parameters (the paper's N=50 defaults).
    pub params: GaParams,
    /// Compute-cost model for the island's node.
    pub cost: CostModel,
    /// Coherence discipline for migrant reads.
    pub mode: Coherence,
    /// Migrants broadcast per generation (the paper uses N/2 = 25).
    pub migration_count: usize,
    /// Stopping rule.
    pub stop: StopPolicy,
    /// Dynamic staleness control (§6 future work): when set, a
    /// [`PartialAsync`](Coherence::PartialAsync) island adapts its age
    /// bound within `(min, max)` from observed blocking and slack.
    pub adaptive: Option<(u64, u64)>,
    /// Crash/recovery schedule (`None` = no checkpointing, the default —
    /// which also keeps the RNG stream byte-identical to pre-recovery
    /// builds).
    pub recovery: Option<RecoveryPlan>,
    /// Chandy–Lamport consistent snapshots (`None` = off). The island
    /// takes part in marker waves on the out-of-band plane: local capture
    /// reuses its newest sealed checkpoint frame (zero extra RNG draws,
    /// zero virtual time), in-flight channel updates are recorded on the
    /// apply path, and completed frames are posted to the shared board.
    /// Islands never pause for a snapshot; snapshot-on runs stay
    /// byte-identical to snapshot-off runs.
    pub snap: Option<SnapConfig>,
    /// Crash supervision (`None` = the pre-supervision behaviour:
    /// unconditional restart, no backoff). When set, every crash consults
    /// the shared supervisor: restarts come with capped exponential
    /// backoff, and an exhausted budget retires the island so the run
    /// completes degraded with the survivors.
    pub supervisor: Option<Supervisor>,
}

impl IslandConfig {
    /// The paper's configuration for `func` under `mode` with the given
    /// stopping rule.
    pub fn paper(func: TestFn, mode: Coherence, stop: StopPolicy) -> Self {
        IslandConfig {
            func,
            params: GaParams::default(),
            cost: CostModel::default(),
            mode,
            migration_count: 25,
            stop,
            adaptive: None,
            recovery: None,
            snap: None,
            supervisor: None,
        }
    }
}

/// What one island reports at the end of a run.
#[derive(Debug, Clone)]
pub struct IslandOutcome {
    /// The island's rank.
    pub rank: usize,
    /// Generations it executed.
    pub generations: u64,
    /// Its best-ever fitness.
    pub best: f64,
    /// Mean fitness of its final population (solution-quality metric).
    pub mean_fitness: f64,
    /// Virtual time at which it first reached the target, if it did.
    pub time_to_target: Option<SimTime>,
    /// Virtual time at which its best-ever fitness last improved.
    pub time_of_last_improvement: SimTime,
    /// Virtual time at which it left the generation loop.
    pub end_time: SimTime,
    /// Total GA work it performed.
    pub work: GenWork,
    /// Crash recoveries it performed (warm or cold).
    pub restores: u64,
    /// Largest rollback distance across its warm restores, in generations
    /// (0 when it never crashed, or only restarted cold).
    pub max_rollback: u64,
    /// Warm restores served from a consistent cut (subset of `restores`).
    pub cut_restores: u64,
    /// Whether the supervisor exhausted this island's restart budget and
    /// retired it (the island's metrics then describe a partial run).
    pub gave_up: bool,
}

/// Harness-side convergence oracle: tracks which islands have reached the
/// quality target so that every island can stop as soon as all have.
///
/// This is *measurement machinery*, not part of the simulated protocol
/// (zero virtual cost) — the paper equivalently ran a generous fixed
/// generation count and verified convergence offline for all 25 trials.
#[derive(Clone)]
pub struct ConvergenceBoard {
    done: Arc<Mutex<Vec<bool>>>,
}

impl ConvergenceBoard {
    /// A board for `ranks` islands.
    pub fn new(ranks: usize) -> Self {
        ConvergenceBoard {
            done: Arc::new(Mutex::new(vec![false; ranks])),
        }
    }

    /// Mark `rank` as converged.
    pub fn mark(&self, rank: usize) {
        self.done.lock()[rank] = true;
    }

    /// True once every island is marked.
    pub fn all_done(&self) -> bool {
        self.done.lock().iter().all(|&d| d)
    }

    /// Number of islands marked so far.
    pub fn count(&self) -> usize {
        self.done.lock().iter().filter(|&&d| d).count()
    }
}

/// Run one island inside its simulated process. `locs[r]` is the shared
/// migrant location written by rank `r` (see
/// [`Directory::add_per_rank`](nscc_dsm::Directory::add_per_rank)).
pub fn run_island(
    ctx: &mut Ctx,
    mut node: DsmNode<MigrantBatch>,
    locs: &[LocId],
    cfg: &IslandConfig,
    board: &ConvergenceBoard,
) -> IslandOutcome {
    let rank = node.rank();
    let p = node.ranks();
    assert_eq!(locs.len(), p, "one migrant location per rank");

    // Recovery runs draw the deme's randomness from an island-owned RNG so
    // that a checkpointed reseed reproduces the post-restore stream exactly;
    // without recovery everything stays on the shared process RNG, keeping
    // baseline runs byte-identical to pre-recovery builds. The cost model
    // always draws from the process RNG — its stream shapes virtual time,
    // not evolution, and must not shift across a restore.
    let mut own_rng: Option<StdRng> = cfg
        .recovery
        .as_ref()
        .map(|_| StdRng::seed_from_u64(ctx.rng().gen()));
    let mut deme = match own_rng.as_mut() {
        Some(rng) => Deme::new(cfg.func, cfg.params.clone(), rng),
        None => Deme::new(cfg.func, cfg.params.clone(), ctx.rng()),
    };
    let mut ckpts: VecDeque<Vec<u8>> = VecDeque::new();
    let mut crash_idx = 0usize;
    let mut restores = 0u64;
    let mut max_rollback = 0u64;
    let mut cut_restores = 0u64;
    let mut gave_up = false;
    // Marker-protocol state: the port on the out-of-band plane, the cut
    // being recorded (id, captured frame, frame generation), and the
    // newest cut already finished locally.
    let snap_port = cfg.snap.as_ref().map(|sc| sc.plane.port(rank));
    let mut snap_active: Option<(u64, Vec<u8>, u64)> = None;
    let mut snap_done: u64 = 0;
    let mut last_ckpt_gen: u64 = 0;
    let mut gen: u64 = 0;
    let mut time_to_target: Option<SimTime> = None;
    let mut last_incorporated: Vec<u64> = vec![0; p];
    let mut best_seen = f64::INFINITY;
    let mut last_improvement = SimTime::ZERO;
    let mut controller = match (cfg.adaptive, cfg.mode) {
        (Some((min, max)), Coherence::PartialAsync { age }) => {
            Some(AgeController::new(age, min, max))
        }
        _ => None,
    };
    let (target, max_generations, quality_stop) = match cfg.stop {
        StopPolicy::FixedGenerations(g) => (f64::NEG_INFINITY, g, false),
        StopPolicy::TargetQuality { target, cap } => (target, cap, true),
    };

    // An island that starts at the target still participates (writes) until
    // everyone is done, so peers' reads stay satisfiable.
    if quality_stop && deme.best_ever().fitness <= target {
        time_to_target = Some(ctx.now());
        board.mark(rank);
    }

    'gens: while gen < max_generations {
        // Crash windows: the fault layer has been dropping this island's
        // traffic since the crash instant; the island notices here, sits
        // out until the restart time, then recovers per the plan's style.
        if let Some(rec) = &cfg.recovery {
            while crash_idx < rec.crashes.len() && ctx.now() >= rec.crashes[crash_idx].0 {
                let restart_at = rec.crashes[crash_idx].1;
                crash_idx += 1;
                if restart_at > ctx.now() {
                    ctx.advance(restart_at - ctx.now());
                }
                // Supervision: the shared policy brain approves the restart
                // (imposing its capped exponential backoff) or retires the
                // island when the budget is spent.
                if let Some(sup) = &cfg.supervisor {
                    match sup.on_crash(rank) {
                        Decision::Restart { attempt, backoff } => {
                            if backoff > SimTime::ZERO {
                                ctx.advance(backoff);
                            }
                            if let Some(hub) = node.hub() {
                                hub.emit(ObsEvent::SupervisorRestart {
                                    t_ns: ctx.now().as_nanos(),
                                    rank: rank as u32,
                                    attempt,
                                    backoff_ns: backoff.as_nanos(),
                                });
                            }
                        }
                        Decision::GiveUp { restarts: used } => {
                            if let Some(hub) = node.hub() {
                                hub.emit(ObsEvent::SupervisorGiveUp {
                                    t_ns: ctx.now().as_nanos(),
                                    rank: rank as u32,
                                    restarts: used,
                                });
                            }
                            // Degrade gracefully: leave the generation loop;
                            // the retirement write below unblocks any peer
                            // still parked on this island's location.
                            gave_up = true;
                            break 'gens;
                        }
                    }
                }
                let from_gen = gen;
                let mut rolled: Option<IslandCkpt> = None;
                let mut inflight: Option<Vec<(LocId, u64, MigrantBatch)>> = None;
                if rec.style == RecoveryStyle::Warm {
                    // Preferred restore source: the newest complete
                    // consistent cut (this rank's frame plus the in-flight
                    // updates its channels recorded)…
                    let cut = cfg.snap.as_ref().and_then(|sc| {
                        let cut = sc.board.latest_complete()?;
                        let f = cut.frame(rank)?;
                        if f.state.is_empty() {
                            return None; // posted before any local frame existed
                        }
                        let ck = nscc_ckpt::unseal(&f.state)
                            .and_then(nscc_ckpt::from_bytes::<IslandCkpt>)
                            .ok()?;
                        let inf =
                            nscc_ckpt::from_bytes::<Vec<(LocId, u64, MigrantBatch)>>(&f.inflight)
                                .unwrap_or_default();
                        Some((ck, inf))
                    });
                    // …falling back to the newest intact local stop-world
                    // frame; a corrupt frame is dropped and the previous
                    // generation tried instead.
                    let mut local: Option<IslandCkpt> = None;
                    while let Some(frame) = ckpts.pop_back() {
                        let decoded =
                            nscc_ckpt::unseal(&frame).and_then(nscc_ckpt::from_bytes::<IslandCkpt>);
                        if let Ok(ck) = decoded {
                            ckpts.push_back(frame);
                            local = Some(ck);
                            break;
                        }
                    }
                    // Newest state wins: a cut lagging behind the local
                    // frames (marker latency) must not stretch the rollback
                    // past what the age bound promises.
                    rolled = match (cut, local) {
                        (Some((c, inf)), Some(l)) => {
                            if c.gen >= l.gen {
                                inflight = Some(inf);
                                Some(c)
                            } else {
                                Some(l)
                            }
                        }
                        (Some((c, inf)), None) => {
                            inflight = Some(inf);
                            Some(c)
                        }
                        (None, l) => l,
                    };
                }
                let to_gen = match rolled {
                    Some(ck) => {
                        deme = Deme::from_state(cfg.func, cfg.params.clone(), ck.deme);
                        own_rng = Some(StdRng::seed_from_u64(ck.reseed));
                        last_incorporated = ck.last_incorporated;
                        best_seen = ck.best_seen;
                        last_improvement = ck.last_improvement;
                        time_to_target = time_to_target.or(ck.time_to_target);
                        // The restored cache is ≤ `every` generations stale
                        // — exactly the staleness Global_Read tolerates, so
                        // the node rejoins as if it were a slow peer (§4.1).
                        node.restore_cache(ck.cache);
                        // A cut restore also replays the in-flight updates
                        // the cut recorded — newer-wins, exactly as live
                        // delivery would have applied them.
                        if let Some(inf) = inflight.take() {
                            cut_restores += 1;
                            for (loc, age, v) in inf {
                                if node.cached_age(loc).map_or(true, |have| age > have) {
                                    node.restore_cache(vec![(loc, age, v)]);
                                }
                            }
                        }
                        gen = ck.gen;
                        gen
                    }
                    // Cold restart (or no intact checkpoint survived):
                    // abandon state, fresh deme at the current generation.
                    None => {
                        let rng = own_rng.as_mut().expect("recovery implies own rng");
                        deme = Deme::new(cfg.func, cfg.params.clone(), rng);
                        gen
                    }
                };
                // Resync: absorb whatever peer updates queued while down.
                node.drain(ctx);
                let rollback = from_gen - to_gen;
                max_rollback = max_rollback.max(rollback);
                restores += 1;
                if let Some(hub) = node.hub() {
                    // The coherence mode's promise travels on the event so
                    // the audit layer can check `rollback ≤ bound` without
                    // knowing the experiment config. Warm restores under
                    // an age bound stay within `max(age, 1)` (a checkpoint
                    // cadence of 1 still rolls back one generation);
                    // anything else is unbounded by design.
                    let bound = match cfg.mode {
                        Coherence::PartialAsync { age } => age.max(1),
                        _ => u64::MAX,
                    };
                    hub.emit(ObsEvent::Restore {
                        t_ns: ctx.now().as_nanos(),
                        rank: rank as u32,
                        from_iter: from_gen,
                        to_iter: to_gen,
                        rollback,
                        bound,
                    });
                }
            }
        }

        gen += 1;

        // Compute phase: one generation of real GA math, charged to the
        // virtual clock through the cost model.
        let work = match own_rng.as_mut() {
            Some(rng) => deme.step(rng),
            None => deme.step(ctx.rng()),
        };
        let cost = cfg.cost.generation_cost(work, ctx.rng());
        ctx.advance(cost);

        if p > 1 {
            // Publish this generation's best individuals (age = gen).
            node.write(ctx, locs[rank], deme.migrants(cfg.migration_count), gen);

            // Incorporate migrants from every peer under the discipline —
            // but only batches not seen before ("incorporate migrants
            // into its population as and when they arrive", §3.1): a
            // starved deme evolves alone, which is exactly the premature-
            // convergence risk stale asynchrony carries.
            for (q, &loc) in locs.iter().enumerate() {
                if q == rank || !node.is_reader(loc) {
                    continue;
                }
                let (age, migrants) = match &mut controller {
                    Some(ctl) => {
                        let out = node.global_read_ex(ctx, loc, gen, ctl.current());
                        ctl.observe(out.blocked, out.slack());
                        (out.age, out.value)
                    }
                    None => node.read(ctx, loc, gen, cfg.mode),
                };
                if age > last_incorporated[q] {
                    last_incorporated[q] = age;
                    deme.incorporate(&migrants);
                }
            }
        }

        if deme.best_ever().fitness < best_seen {
            best_seen = deme.best_ever().fitness;
            last_improvement = ctx.now();
        }
        if quality_stop && time_to_target.is_none() && deme.best_ever().fitness <= target {
            time_to_target = Some(ctx.now());
            board.mark(rank);
        }

        // Checkpoint cut: every `every` generations, capture deme + DSM
        // cache + an RNG reseed into a sealed frame. Two frames are kept so
        // a corrupt newest frame still leaves a usable older generation.
        if let Some(rec) = &cfg.recovery {
            if gen % rec.every == 0 {
                let rng = own_rng.as_mut().expect("recovery implies own rng");
                let reseed: u64 = rng.gen();
                *rng = StdRng::seed_from_u64(reseed);
                let ck = IslandCkpt {
                    gen,
                    reseed,
                    deme: deme.export_state(),
                    last_incorporated: last_incorporated.clone(),
                    best_seen,
                    last_improvement,
                    time_to_target,
                    cache: node.export_cache(),
                };
                let sealed = nscc_ckpt::seal(&nscc_ckpt::to_bytes(&ck));
                if let Some(hub) = node.hub() {
                    hub.emit(ObsEvent::Checkpoint {
                        t_ns: ctx.now().as_nanos(),
                        rank: rank as u32,
                        iter: gen,
                        bytes: sealed.len() as u64,
                    });
                }
                ckpts.push_back(sealed);
                last_ckpt_gen = gen;
                if ckpts.len() > 2 {
                    ckpts.pop_front();
                }
            }
        }

        // Marker-protocol consistent snapshots: poll the out-of-band plane,
        // join a wave on first marker (capture + forward), finalize once
        // every incoming channel has closed. The whole path costs zero
        // virtual time and zero RNG draws — islands never pause for a
        // snapshot, and snapshot-on runs stay byte-identical.
        if p > 1 {
            if let (Some(sc), Some(port)) = (cfg.snap.as_ref(), snap_port.as_ref()) {
                let mut begin = |node: &mut DsmNode<MigrantBatch>,
                                 ckpts: &VecDeque<Vec<u8>>,
                                 id: u64,
                                 closed: Option<usize>|
                 -> (u64, Vec<u8>, u64) {
                    // Local capture reuses the newest sealed stop-world
                    // frame (empty when this rank checkpoints nothing):
                    // the cut frame is ≤ `every` generations stale, which
                    // the age bound already absorbs.
                    let frame = ckpts.back().cloned().unwrap_or_default();
                    let frame_gen = if frame.is_empty() { 0 } else { last_ckpt_gen };
                    node.snap_begin(id, closed);
                    port.broadcast(ctx, id);
                    if let Some(hub) = node.hub() {
                        hub.emit(ObsEvent::SnapshotStart {
                            t_ns: ctx.now().as_nanos(),
                            rank: rank as u32,
                            id,
                            gen: frame_gen,
                        });
                    }
                    (id, frame, frame_gen)
                };
                for m in port.poll() {
                    let active_id = snap_active.as_ref().map(|(id, _, _)| *id);
                    if active_id == Some(m.id) {
                        node.snap_close(m.src);
                    } else if m.id > snap_done && active_id.map_or(true, |a| m.id > a) {
                        // First marker of a newer wave; it preempts any
                        // stalled older recording.
                        node.snap_finish();
                        snap_active = Some(begin(&mut node, &ckpts, m.id, Some(m.src)));
                    }
                    // Anything else is a stale marker of an abandoned wave.
                }
                // Initiation: rank 0 starts a wave at the cut cadence.
                if rank == 0 && snap_active.is_none() && gen % sc.every == 0 && gen > snap_done {
                    sc.board.note_start(gen);
                    snap_active = Some(begin(&mut node, &ckpts, gen, None));
                }
                // Local completion: every incoming channel has delivered
                // its marker — post the frame and the recorded in-flight
                // updates to the board.
                if snap_active.is_some() && node.snap_open() == 0 {
                    let (id, frame, frame_gen) = snap_active.take().expect("active cut");
                    let recorded = node.snap_finish();
                    let count = recorded.len() as u64;
                    let inflight_bytes = nscc_ckpt::to_bytes(&recorded);
                    if let Some(hub) = node.hub() {
                        hub.emit(ObsEvent::SnapshotComplete {
                            t_ns: ctx.now().as_nanos(),
                            rank: rank as u32,
                            id,
                            inflight: count,
                            pause_ns: 0,
                        });
                    }
                    sc.board.post(
                        id,
                        nscc_ckpt::CutFrame {
                            rank: rank as u32,
                            gen: frame_gen,
                            state: frame,
                            inflight: inflight_bytes,
                        },
                        count,
                        ctx.now().as_nanos(),
                    );
                    sc.board.clear_wave(rank as u32);
                    snap_done = id;
                } else if let Some((id, _, _)) = snap_active.as_ref() {
                    // Still mid-recording: refresh the board's live wave
                    // state so a wedged run's deadlock report can name the
                    // open channels and in-flight depth per rank.
                    sc.board
                        .note_wave(rank as u32, *id, node.snap_open(), node.snap_recorded());
                }
            }
        }

        // The exit decision must be taken at the same protocol point on
        // every island. Under the barrier discipline, marks posted before
        // barrier `gen` are visible to *all* islands after it and marks of
        // later generations to none, so the post-barrier check is
        // consistent and every island leaves at the same generation. The
        // barrier-free disciplines tolerate ragged exits via the
        // retirement sentinel below. (Fixed-generation runs exit in
        // lockstep by construction.)
        if cfg.mode.uses_barrier() && p > 1 {
            node.barrier(ctx, gen);
        }
        if quality_stop && board.all_done() {
            break;
        }
    }

    // Retirement: publish a final, "infinitely fresh" update so that any
    // peer still blocked in Global_Read on this island unblocks and can
    // observe termination itself.
    if p > 1 && !cfg.mode.uses_barrier() {
        node.write(
            ctx,
            locs[rank],
            deme.migrants(cfg.migration_count),
            u64::MAX,
        );
    }

    IslandOutcome {
        rank,
        generations: gen,
        best: deme.best_ever().fitness,
        mean_fitness: deme.mean_fitness(),
        time_to_target,
        time_of_last_improvement: last_improvement,
        end_time: ctx.now(),
        work: deme.total_work(),
        restores,
        max_rollback,
        cut_restores,
        gave_up,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscc_dsm::{Directory, DsmWorld};
    use nscc_msg::MsgConfig;
    use nscc_net::{IdealMedium, Network};
    use nscc_sim::SimBuilder;

    fn run_modes(mode: Coherence, seed: u64) -> Vec<IslandOutcome> {
        let ranks = 3;
        let mut dir = Directory::new();
        let locs = dir.add_per_rank("best", ranks);
        let mut world: DsmWorld<MigrantBatch> = DsmWorld::new(
            Network::new(IdealMedium::new(SimTime::from_millis(1))),
            ranks,
            MsgConfig::default(),
            dir,
        );
        for &l in &locs {
            world.set_initial(l, Vec::new());
        }
        let board = ConvergenceBoard::new(ranks);
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let mut sim = SimBuilder::new(seed);
        for r in 0..ranks {
            let node = world.node(r);
            let locs = locs.clone();
            let board = board.clone();
            let outcomes = Arc::clone(&outcomes);
            let cfg = IslandConfig {
                cost: CostModel::deterministic(),
                ..IslandConfig::paper(
                    TestFn::F1Sphere,
                    mode,
                    StopPolicy::TargetQuality {
                        target: 0.01,
                        cap: 120,
                    },
                )
            };
            sim.spawn(format!("island{r}"), move |ctx| {
                let out = run_island(ctx, node, &locs, &cfg, &board);
                outcomes.lock().push(out);
            });
        }
        sim.run().unwrap();
        let mut v = Arc::try_unwrap(outcomes)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        v.sort_by_key(|o| o.rank);
        v
    }

    #[test]
    fn all_modes_run_to_completion_and_converge() {
        for mode in [
            Coherence::Synchronous,
            Coherence::FullyAsync,
            Coherence::PartialAsync { age: 0 },
            Coherence::PartialAsync { age: 5 },
        ] {
            let outs = run_modes(mode, 11);
            assert_eq!(outs.len(), 3, "{mode}: all islands must report");
            for o in &outs {
                assert!(o.generations > 0);
                assert!(
                    o.best <= 0.01 || o.generations == 120,
                    "{mode}: island {} best {} after {} gens",
                    o.rank,
                    o.best,
                    o.generations
                );
            }
        }
    }

    #[test]
    fn sync_islands_stay_in_generation_lockstep() {
        let outs = run_modes(Coherence::Synchronous, 13);
        let gens: Vec<u64> = outs.iter().map(|o| o.generations).collect();
        let (min, max) = (
            *gens.iter().min().expect("nonempty"),
            *gens.iter().max().expect("nonempty"),
        );
        assert!(max - min <= 1, "sync generations diverged: {gens:?}");
    }

    #[test]
    fn migration_helps_over_isolation() {
        // With migration (any mode), islands share discoveries; the global
        // best should be at least as good as the worst isolated deme.
        let outs = run_modes(Coherence::PartialAsync { age: 2 }, 17);
        let global_best = outs.iter().map(|o| o.best).fold(f64::INFINITY, f64::min);
        assert!(
            global_best <= 0.01,
            "islands with migration should converge"
        );
    }

    fn run_with_recovery(style: RecoveryStyle, seed: u64) -> Vec<IslandOutcome> {
        let ranks = 3;
        let mut dir = Directory::new();
        let locs = dir.add_per_rank("best", ranks);
        let mut world: DsmWorld<MigrantBatch> = DsmWorld::new(
            Network::new(IdealMedium::new(SimTime::from_millis(1))),
            ranks,
            MsgConfig::default(),
            dir,
        );
        for &l in &locs {
            world.set_initial(l, Vec::new());
        }
        let board = ConvergenceBoard::new(ranks);
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let mut sim = SimBuilder::new(seed);
        for r in 0..ranks {
            let node = world.node(r);
            let locs = locs.clone();
            let board = board.clone();
            let outcomes = Arc::clone(&outcomes);
            let mut cfg = IslandConfig {
                cost: CostModel::deterministic(),
                ..IslandConfig::paper(
                    TestFn::F1Sphere,
                    Coherence::PartialAsync { age: 3 },
                    StopPolicy::TargetQuality {
                        target: 0.01,
                        cap: 200,
                    },
                )
            };
            if r == 1 {
                cfg.recovery = Some(RecoveryPlan {
                    every: 3,
                    crashes: vec![(SimTime::from_millis(25), SimTime::from_millis(35))],
                    style,
                });
            }
            sim.spawn(format!("island{r}"), move |ctx| {
                let out = run_island(ctx, node, &locs, &cfg, &board);
                outcomes.lock().push(out);
            });
        }
        sim.run().unwrap();
        let mut v = Arc::try_unwrap(outcomes)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        v.sort_by_key(|o| o.rank);
        v
    }

    #[test]
    fn warm_recovery_bounds_rollback_to_cadence() {
        let outs = run_with_recovery(RecoveryStyle::Warm, 23);
        let crashed = &outs[1];
        assert_eq!(crashed.restores, 1, "the scheduled crash must be taken");
        assert!(
            crashed.max_rollback <= 3,
            "rollback {} exceeds the checkpoint cadence",
            crashed.max_rollback
        );
        for o in [&outs[0], &outs[2]] {
            assert_eq!(o.restores, 0, "rank {} never crashes", o.rank);
            assert_eq!(o.max_rollback, 0);
        }
        // The run as a whole still converges despite the crash.
        let global_best = outs.iter().map(|o| o.best).fold(f64::INFINITY, f64::min);
        assert!(global_best <= 0.01, "crashed run failed to converge");
    }

    #[test]
    fn cold_restart_reports_zero_rollback() {
        let outs = run_with_recovery(RecoveryStyle::Cold, 23);
        let crashed = &outs[1];
        assert_eq!(crashed.restores, 1);
        assert_eq!(
            crashed.max_rollback, 0,
            "cold restart abandons state instead of rolling back"
        );
    }

    fn run_with_snapshots(
        crashes: Vec<(SimTime, SimTime)>,
        supervisor: Option<Supervisor>,
        seed: u64,
    ) -> (Vec<IslandOutcome>, nscc_dsm::SnapshotBoard) {
        let ranks = 3;
        let mut dir = Directory::new();
        let locs = dir.add_per_rank("best", ranks);
        let mut world: DsmWorld<MigrantBatch> = DsmWorld::new(
            Network::new(IdealMedium::new(SimTime::from_millis(1))),
            ranks,
            MsgConfig::default(),
            dir,
        );
        for &l in &locs {
            world.set_initial(l, Vec::new());
        }
        let snap = SnapConfig {
            every: 3,
            plane: nscc_msg::MarkerPlane::new(ranks, SimTime::from_micros(10)),
            board: nscc_dsm::SnapshotBoard::new(ranks),
        };
        let cut_board = snap.board.clone();
        let board = ConvergenceBoard::new(ranks);
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let mut sim = SimBuilder::new(seed);
        for r in 0..ranks {
            let node = world.node(r);
            let locs = locs.clone();
            let board = board.clone();
            let outcomes = Arc::clone(&outcomes);
            let mut cfg = IslandConfig {
                cost: CostModel::deterministic(),
                ..IslandConfig::paper(
                    TestFn::F1Sphere,
                    Coherence::PartialAsync { age: 3 },
                    StopPolicy::TargetQuality {
                        target: 0.01,
                        cap: 200,
                    },
                )
            };
            cfg.snap = Some(snap.clone());
            cfg.supervisor = supervisor.clone();
            if r == 1 {
                cfg.recovery = Some(RecoveryPlan {
                    every: 3,
                    crashes: crashes.clone(),
                    style: RecoveryStyle::Warm,
                });
            }
            sim.spawn(format!("island{r}"), move |ctx| {
                let out = run_island(ctx, node, &locs, &cfg, &board);
                outcomes.lock().push(out);
            });
        }
        sim.run().unwrap();
        let mut v = Arc::try_unwrap(outcomes)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        v.sort_by_key(|o| o.rank);
        (v, cut_board)
    }

    #[test]
    fn marker_waves_complete_and_serve_warm_restores() {
        let (outs, cut_board) = run_with_snapshots(
            vec![(SimTime::from_millis(25), SimTime::from_millis(35))],
            None,
            29,
        );
        let c = cut_board.counters();
        assert!(
            c.started >= 1 && c.completed >= 1,
            "cuts must complete without pausing anyone: {c:?}"
        );
        let crashed = &outs[1];
        assert_eq!(crashed.restores, 1, "the scheduled crash must be taken");
        assert!(
            crashed.max_rollback <= 3,
            "rollback {} exceeds the age bound even with cuts in play",
            crashed.max_rollback
        );
        for o in [&outs[0], &outs[2]] {
            assert_eq!(o.restores, 0, "survivors never restore");
            assert!(!o.gave_up);
        }
        let global_best = outs.iter().map(|o| o.best).fold(f64::INFINITY, f64::min);
        assert!(global_best <= 0.01, "crashed run failed to converge");
    }

    #[test]
    fn supervisor_exhaustion_degrades_instead_of_deadlocking() {
        let sup = Supervisor::new(crate::supervise::SupervisorPolicy {
            max_restarts: 1,
            backoff_base: SimTime::from_millis(2),
            backoff_cap: SimTime::from_millis(4),
        });
        let (outs, _) = run_with_snapshots(
            vec![
                (SimTime::from_millis(20), SimTime::from_millis(25)),
                (SimTime::from_millis(30), SimTime::from_millis(35)),
            ],
            Some(sup.clone()),
            31,
        );
        let crashed = &outs[1];
        assert!(crashed.gave_up, "second crash must exhaust the budget");
        assert_eq!(crashed.restores, 1, "only the approved restart restores");
        assert_eq!(sup.failed_ranks(), vec![1]);
        // Survivors keep evolving past the give-up (the retirement write
        // unblocks them) and the run still completes.
        for o in [&outs[0], &outs[2]] {
            assert!(!o.gave_up);
            assert!(o.generations > 0);
        }
        let best = outs.iter().map(|o| o.best).fold(f64::INFINITY, f64::min);
        assert!(best <= 0.01, "survivors still converge");
    }

    #[test]
    fn island_ckpt_roundtrip_is_byte_identical() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut deme = Deme::new(TestFn::F1Sphere, GaParams::default(), &mut rng);
        deme.step(&mut rng);
        let ck = IslandCkpt {
            gen: 7,
            reseed: 0xfeed,
            deme: deme.export_state(),
            last_incorporated: vec![3, 0, 7],
            best_seen: 0.25,
            last_improvement: SimTime::from_millis(42),
            time_to_target: None,
            cache: vec![(LocId(2), 6, vec![deme.best_ever().clone()])],
        };
        let bytes = nscc_ckpt::to_bytes(&ck);
        let back: IslandCkpt = nscc_ckpt::from_bytes(&bytes).unwrap();
        assert_eq!(back.gen, 7);
        assert_eq!(back.reseed, 0xfeed);
        assert_eq!(back.last_incorporated, vec![3, 0, 7]);
        assert_eq!(back.deme.pop.len(), ck.deme.pop.len());
        assert_eq!(back.cache.len(), 1);
        assert_eq!(nscc_ckpt::to_bytes(&back), bytes);
        // A sealed frame passes the integrity check; a flipped byte fails.
        let mut sealed = nscc_ckpt::seal(&bytes);
        assert!(nscc_ckpt::unseal(&sealed).is_ok());
        let mid = sealed.len() / 2;
        sealed[mid] ^= 1;
        assert!(nscc_ckpt::unseal(&sealed).is_err());
    }

    #[test]
    fn convergence_board_counts() {
        let b = ConvergenceBoard::new(3);
        assert!(!b.all_done());
        b.mark(0);
        b.mark(2);
        assert_eq!(b.count(), 2);
        b.mark(1);
        assert!(b.all_done());
    }
}
