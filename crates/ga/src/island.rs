//! The island-model parallel GA program (§3.1, §4.2.1): one deme per
//! simulated process; every generation each island broadcasts its best
//! `N/2` individuals through the DSM and incorporates migrants from every
//! peer under the configured coherence discipline.

use std::sync::Arc;

use parking_lot::Mutex;

use nscc_dsm::{AgeController, Coherence, DsmNode, LocId};
use nscc_sim::{Ctx, SimTime};

use crate::cost::CostModel;
use crate::functions::TestFn;
use crate::params::GaParams;
use crate::population::{Deme, GenWork, Individual};

/// The migrant batch exchanged between islands.
pub type MigrantBatch = Vec<Individual>;

/// Migration topology (§3.1: migration "is controlled by several
/// parameters: interval, rate, and topology"). The paper's experiments
/// broadcast to everyone; ring and random-k are the standard sparse
/// alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every island reads every other island (the paper's setup).
    AllToAll,
    /// Bidirectional ring.
    Ring,
    /// Each island's migrants reach `k` random others.
    Random {
        /// Out-degree of every island.
        k: usize,
    },
}

impl Topology {
    /// Build the migrant-location directory for this topology.
    pub fn build_directory(self, ranks: usize, seed: u64) -> (nscc_dsm::Directory, Vec<LocId>) {
        let mut dir = nscc_dsm::Directory::new();
        let locs = match self {
            Topology::AllToAll => dir.add_per_rank("best", ranks),
            Topology::Ring => dir.add_ring("best", ranks),
            Topology::Random { k } => dir.add_random_topology("best", ranks, k, seed),
        };
        (dir, locs)
    }
}

/// When an island stops evolving (§5.1: the synchronous program runs a
/// fixed 1000 generations; the asynchronous and controlled versions run
/// "for enough generations so that the subpopulation converged further
/// than the synchronous version").
#[derive(Debug, Clone, Copy)]
pub enum StopPolicy {
    /// Run exactly this many generations (the synchronous protocol).
    FixedGenerations(u64),
    /// Run until every island's best-ever fitness reaches `target`, with
    /// a hard generation `cap` for runs that never get there.
    TargetQuality {
        /// Fitness every deme must reach.
        target: f64,
        /// Generation cap.
        cap: u64,
    },
}

/// Per-island configuration for one parallel GA run.
#[derive(Debug, Clone)]
pub struct IslandConfig {
    /// Objective function.
    pub func: TestFn,
    /// Per-deme GA parameters (the paper's N=50 defaults).
    pub params: GaParams,
    /// Compute-cost model for the island's node.
    pub cost: CostModel,
    /// Coherence discipline for migrant reads.
    pub mode: Coherence,
    /// Migrants broadcast per generation (the paper uses N/2 = 25).
    pub migration_count: usize,
    /// Stopping rule.
    pub stop: StopPolicy,
    /// Dynamic staleness control (§6 future work): when set, a
    /// [`PartialAsync`](Coherence::PartialAsync) island adapts its age
    /// bound within `(min, max)` from observed blocking and slack.
    pub adaptive: Option<(u64, u64)>,
}

impl IslandConfig {
    /// The paper's configuration for `func` under `mode` with the given
    /// stopping rule.
    pub fn paper(func: TestFn, mode: Coherence, stop: StopPolicy) -> Self {
        IslandConfig {
            func,
            params: GaParams::default(),
            cost: CostModel::default(),
            mode,
            migration_count: 25,
            stop,
            adaptive: None,
        }
    }
}

/// What one island reports at the end of a run.
#[derive(Debug, Clone)]
pub struct IslandOutcome {
    /// The island's rank.
    pub rank: usize,
    /// Generations it executed.
    pub generations: u64,
    /// Its best-ever fitness.
    pub best: f64,
    /// Mean fitness of its final population (solution-quality metric).
    pub mean_fitness: f64,
    /// Virtual time at which it first reached the target, if it did.
    pub time_to_target: Option<SimTime>,
    /// Virtual time at which its best-ever fitness last improved.
    pub time_of_last_improvement: SimTime,
    /// Virtual time at which it left the generation loop.
    pub end_time: SimTime,
    /// Total GA work it performed.
    pub work: GenWork,
}

/// Harness-side convergence oracle: tracks which islands have reached the
/// quality target so that every island can stop as soon as all have.
///
/// This is *measurement machinery*, not part of the simulated protocol
/// (zero virtual cost) — the paper equivalently ran a generous fixed
/// generation count and verified convergence offline for all 25 trials.
#[derive(Clone)]
pub struct ConvergenceBoard {
    done: Arc<Mutex<Vec<bool>>>,
}

impl ConvergenceBoard {
    /// A board for `ranks` islands.
    pub fn new(ranks: usize) -> Self {
        ConvergenceBoard {
            done: Arc::new(Mutex::new(vec![false; ranks])),
        }
    }

    /// Mark `rank` as converged.
    pub fn mark(&self, rank: usize) {
        self.done.lock()[rank] = true;
    }

    /// True once every island is marked.
    pub fn all_done(&self) -> bool {
        self.done.lock().iter().all(|&d| d)
    }

    /// Number of islands marked so far.
    pub fn count(&self) -> usize {
        self.done.lock().iter().filter(|&&d| d).count()
    }
}

/// Run one island inside its simulated process. `locs[r]` is the shared
/// migrant location written by rank `r` (see
/// [`Directory::add_per_rank`](nscc_dsm::Directory::add_per_rank)).
pub fn run_island(
    ctx: &mut Ctx,
    mut node: DsmNode<MigrantBatch>,
    locs: &[LocId],
    cfg: &IslandConfig,
    board: &ConvergenceBoard,
) -> IslandOutcome {
    let rank = node.rank();
    let p = node.ranks();
    assert_eq!(locs.len(), p, "one migrant location per rank");

    let mut deme = Deme::new(cfg.func, cfg.params.clone(), ctx.rng());
    let mut gen: u64 = 0;
    let mut time_to_target: Option<SimTime> = None;
    let mut last_incorporated: Vec<u64> = vec![0; p];
    let mut best_seen = f64::INFINITY;
    let mut last_improvement = SimTime::ZERO;
    let mut controller = match (cfg.adaptive, cfg.mode) {
        (Some((min, max)), Coherence::PartialAsync { age }) => {
            Some(AgeController::new(age, min, max))
        }
        _ => None,
    };
    let (target, max_generations, quality_stop) = match cfg.stop {
        StopPolicy::FixedGenerations(g) => (f64::NEG_INFINITY, g, false),
        StopPolicy::TargetQuality { target, cap } => (target, cap, true),
    };

    // An island that starts at the target still participates (writes) until
    // everyone is done, so peers' reads stay satisfiable.
    if quality_stop && deme.best_ever().fitness <= target {
        time_to_target = Some(ctx.now());
        board.mark(rank);
    }

    while gen < max_generations {
        gen += 1;

        // Compute phase: one generation of real GA math, charged to the
        // virtual clock through the cost model.
        let work = deme.step(ctx.rng());
        let cost = cfg.cost.generation_cost(work, ctx.rng());
        ctx.advance(cost);

        if p > 1 {
            // Publish this generation's best individuals (age = gen).
            node.write(ctx, locs[rank], deme.migrants(cfg.migration_count), gen);

            // Incorporate migrants from every peer under the discipline —
            // but only batches not seen before ("incorporate migrants
            // into its population as and when they arrive", §3.1): a
            // starved deme evolves alone, which is exactly the premature-
            // convergence risk stale asynchrony carries.
            for (q, &loc) in locs.iter().enumerate() {
                if q == rank || !node.is_reader(loc) {
                    continue;
                }
                let (age, migrants) = match &mut controller {
                    Some(ctl) => {
                        let out = node.global_read_ex(ctx, loc, gen, ctl.current());
                        ctl.observe(out.blocked, out.slack());
                        (out.age, out.value)
                    }
                    None => node.read(ctx, loc, gen, cfg.mode),
                };
                if age > last_incorporated[q] {
                    last_incorporated[q] = age;
                    deme.incorporate(&migrants);
                }
            }
        }

        if deme.best_ever().fitness < best_seen {
            best_seen = deme.best_ever().fitness;
            last_improvement = ctx.now();
        }
        if quality_stop && time_to_target.is_none() && deme.best_ever().fitness <= target {
            time_to_target = Some(ctx.now());
            board.mark(rank);
        }

        // The exit decision must be taken at the same protocol point on
        // every island. Under the barrier discipline, marks posted before
        // barrier `gen` are visible to *all* islands after it and marks of
        // later generations to none, so the post-barrier check is
        // consistent and every island leaves at the same generation. The
        // barrier-free disciplines tolerate ragged exits via the
        // retirement sentinel below. (Fixed-generation runs exit in
        // lockstep by construction.)
        if cfg.mode.uses_barrier() && p > 1 {
            node.barrier(ctx, gen);
        }
        if quality_stop && board.all_done() {
            break;
        }
    }

    // Retirement: publish a final, "infinitely fresh" update so that any
    // peer still blocked in Global_Read on this island unblocks and can
    // observe termination itself.
    if p > 1 && !cfg.mode.uses_barrier() {
        node.write(
            ctx,
            locs[rank],
            deme.migrants(cfg.migration_count),
            u64::MAX,
        );
    }

    IslandOutcome {
        rank,
        generations: gen,
        best: deme.best_ever().fitness,
        mean_fitness: deme.mean_fitness(),
        time_to_target,
        time_of_last_improvement: last_improvement,
        end_time: ctx.now(),
        work: deme.total_work(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscc_dsm::{Directory, DsmWorld};
    use nscc_msg::MsgConfig;
    use nscc_net::{IdealMedium, Network};
    use nscc_sim::SimBuilder;

    fn run_modes(mode: Coherence, seed: u64) -> Vec<IslandOutcome> {
        let ranks = 3;
        let mut dir = Directory::new();
        let locs = dir.add_per_rank("best", ranks);
        let mut world: DsmWorld<MigrantBatch> = DsmWorld::new(
            Network::new(IdealMedium::new(SimTime::from_millis(1))),
            ranks,
            MsgConfig::default(),
            dir,
        );
        for &l in &locs {
            world.set_initial(l, Vec::new());
        }
        let board = ConvergenceBoard::new(ranks);
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let mut sim = SimBuilder::new(seed);
        for r in 0..ranks {
            let node = world.node(r);
            let locs = locs.clone();
            let board = board.clone();
            let outcomes = Arc::clone(&outcomes);
            let cfg = IslandConfig {
                cost: CostModel::deterministic(),
                ..IslandConfig::paper(
                    TestFn::F1Sphere,
                    mode,
                    StopPolicy::TargetQuality {
                        target: 0.01,
                        cap: 120,
                    },
                )
            };
            sim.spawn(format!("island{r}"), move |ctx| {
                let out = run_island(ctx, node, &locs, &cfg, &board);
                outcomes.lock().push(out);
            });
        }
        sim.run().unwrap();
        let mut v = Arc::try_unwrap(outcomes)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        v.sort_by_key(|o| o.rank);
        v
    }

    #[test]
    fn all_modes_run_to_completion_and_converge() {
        for mode in [
            Coherence::Synchronous,
            Coherence::FullyAsync,
            Coherence::PartialAsync { age: 0 },
            Coherence::PartialAsync { age: 5 },
        ] {
            let outs = run_modes(mode, 11);
            assert_eq!(outs.len(), 3, "{mode}: all islands must report");
            for o in &outs {
                assert!(o.generations > 0);
                assert!(
                    o.best <= 0.01 || o.generations == 120,
                    "{mode}: island {} best {} after {} gens",
                    o.rank,
                    o.best,
                    o.generations
                );
            }
        }
    }

    #[test]
    fn sync_islands_stay_in_generation_lockstep() {
        let outs = run_modes(Coherence::Synchronous, 13);
        let gens: Vec<u64> = outs.iter().map(|o| o.generations).collect();
        let (min, max) = (
            *gens.iter().min().expect("nonempty"),
            *gens.iter().max().expect("nonempty"),
        );
        assert!(max - min <= 1, "sync generations diverged: {gens:?}");
    }

    #[test]
    fn migration_helps_over_isolation() {
        // With migration (any mode), islands share discoveries; the global
        // best should be at least as good as the worst isolated deme.
        let outs = run_modes(Coherence::PartialAsync { age: 2 }, 17);
        let global_best = outs.iter().map(|o| o.best).fold(f64::INFINITY, f64::min);
        assert!(
            global_best <= 0.01,
            "islands with migration should converge"
        );
    }

    #[test]
    fn convergence_board_counts() {
        let b = ConvergenceBoard::new(3);
        assert!(!b.all_done());
        b.mark(0);
        b.mark(2);
        assert_eq!(b.count(), 2);
        b.mark(1);
        assert!(b.all_done());
    }
}
