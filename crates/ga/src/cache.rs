//! The fitness cache — the "software caching technique" the paper applies
//! to its optimized serial GA [19] to avoid re-evaluating surviving
//! individuals. Cloned migrants and elitist survivors hit the cache.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::encoding::{decode, Genome};
use crate::functions::TestFn;

/// Memoizes genome → fitness for one function.
///
/// For the noisy F4, the *first sampled* fitness of a genome is cached:
/// re-evaluating survivors would otherwise resample the noise, which is
/// exactly the recomputation the caching technique avoids.
pub struct FitnessCache {
    func: TestFn,
    map: HashMap<Vec<u8>, f64>,
    hits: u64,
    misses: u64,
    /// Entry cap; the cache is cleared when full (simple and allocation-
    /// friendly; in practice GA runs stay far below it).
    capacity: usize,
}

impl FitnessCache {
    /// A cache for `func` with the default capacity.
    pub fn new(func: TestFn) -> Self {
        FitnessCache::with_capacity(func, 1 << 20)
    }

    /// A cache holding at most `capacity` entries.
    pub fn with_capacity(func: TestFn, capacity: usize) -> Self {
        FitnessCache {
            func,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            capacity: capacity.max(1),
        }
    }

    /// Fitness of `genome`, evaluating (and caching) on a miss. Returns
    /// `(fitness, was_hit)`.
    pub fn fitness(&mut self, genome: &Genome, rng: &mut StdRng) -> (f64, bool) {
        if let Some(&f) = self.map.get(genome.as_bytes()) {
            self.hits += 1;
            return (f, true);
        }
        self.misses += 1;
        let x = decode(self.func, genome);
        let f = self.func.eval_noisy(&x, rng.gen::<f64>(), rng.gen::<f64>());
        if self.map.len() >= self.capacity {
            self.map.clear();
        }
        self.map.insert(genome.as_bytes().to_vec(), f);
        (f, false)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (true evaluations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn second_lookup_hits() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cache = FitnessCache::new(TestFn::F1Sphere);
        let g = Genome::random(TestFn::F1Sphere.genome_bits(), &mut rng);
        let (f1, hit1) = cache.fitness(&g, &mut rng);
        let (f2, hit2) = cache.fitness(&g, &mut rng);
        assert!(!hit1 && hit2);
        assert_eq!(f1, f2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn noisy_f4_fitness_is_stable_once_cached() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cache = FitnessCache::new(TestFn::F4QuarticNoise);
        let g = Genome::zeros(TestFn::F4QuarticNoise.genome_bits());
        let (f1, _) = cache.fitness(&g, &mut rng);
        for _ in 0..5 {
            let (f, hit) = cache.fitness(&g, &mut rng);
            assert!(hit);
            assert_eq!(f, f1, "cached noisy fitness must not be resampled");
        }
    }

    #[test]
    fn capacity_overflow_clears_but_keeps_working() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cache = FitnessCache::with_capacity(TestFn::F1Sphere, 4);
        for _ in 0..20 {
            let g = Genome::random(TestFn::F1Sphere.genome_bits(), &mut rng);
            let _ = cache.fitness(&g, &mut rng);
        }
        assert!(cache.len() <= 4);
        assert_eq!(cache.misses(), 20);
    }

    #[test]
    fn distinct_genomes_are_distinct_entries() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cache = FitnessCache::new(TestFn::F2Rosenbrock);
        let a = Genome::zeros(TestFn::F2Rosenbrock.genome_bits());
        let mut b = a.clone();
        b.flip(0);
        let (fa, _) = cache.fitness(&a, &mut rng);
        let (fb, _) = cache.fitness(&b, &mut rng);
        assert_ne!(fa, fb);
        assert_eq!(cache.len(), 2);
    }
}
