//! The supervision layer: a policy brain deciding, per island crash,
//! whether to warm-restart the victim (with bounded exponential backoff)
//! or to give up on it and degrade the run.
//!
//! The supervisor is deliberately *not* a process: islands detect their
//! own crash windows (the fault plan drops their traffic; peers' failure
//! detectors suspect them) and consult the shared [`Supervisor`] at the
//! restore point. This keeps the decision global — restart budgets are
//! per rank but the counters are world-wide — without adding a
//! coordinator that could itself fail. On [`Decision::GiveUp`] the island
//! retires (publishes its `RETIRE_AGE` sentinel so blocked peers
//! unblock), the run continues with the survivors, and the report is
//! marked degraded instead of the simulation dying with a deadlock.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use nscc_sim::SimTime;

/// Restart policy: how many times a rank may be restarted, and how the
/// restart backoff grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Restarts allowed per rank before the supervisor gives up on it.
    pub max_restarts: u32,
    /// Backoff imposed before the first restart; doubles per attempt.
    pub backoff_base: SimTime,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: SimTime,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_restarts: 3,
            backoff_base: SimTime::from_millis(5),
            backoff_cap: SimTime::from_millis(80),
        }
    }
}

/// The supervisor's verdict for one crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Restore from the newest consistent cut (or the stop-world
    /// fallback) after waiting out `backoff`.
    Restart {
        /// Which restart this is for the rank (1 = first).
        attempt: u32,
        /// Backoff to wait before restoring.
        backoff: SimTime,
    },
    /// Restart budget exhausted: mark the rank failed and continue with
    /// the survivors.
    GiveUp {
        /// Restarts the rank consumed before the budget ran out.
        restarts: u32,
    },
}

#[derive(Default)]
struct SupInner {
    attempts: HashMap<usize, u32>,
    restarts: u64,
    give_ups: u64,
    failed: Vec<u32>,
    max_backoff_ns: u64,
}

/// Shared crash-supervision state for one run. Cloneable; every island
/// holds a handle and consults it at its restore points.
#[derive(Clone)]
pub struct Supervisor {
    policy: SupervisorPolicy,
    inner: Arc<Mutex<SupInner>>,
}

impl fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("Supervisor")
            .field("policy", &self.policy)
            .field("restarts", &g.restarts)
            .field("give_ups", &g.give_ups)
            .finish()
    }
}

impl Supervisor {
    /// A supervisor enforcing `policy`.
    pub fn new(policy: SupervisorPolicy) -> Self {
        Supervisor {
            policy,
            inner: Arc::new(Mutex::new(SupInner::default())),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> SupervisorPolicy {
        self.policy
    }

    /// Rank `rank` crashed: decide restart (with capped exponential
    /// backoff) or give-up (budget exhausted).
    pub fn on_crash(&self, rank: usize) -> Decision {
        let mut g = self.inner.lock();
        let a = g.attempts.entry(rank).or_insert(0);
        *a += 1;
        let attempt = *a;
        if attempt > self.policy.max_restarts {
            g.give_ups += 1;
            g.failed.push(rank as u32);
            return Decision::GiveUp {
                restarts: attempt - 1,
            };
        }
        let exp = SimTime::from_nanos(
            self.policy
                .backoff_base
                .as_nanos()
                .saturating_mul(1u64 << (attempt - 1).min(16)),
        );
        let backoff = exp.min(self.policy.backoff_cap);
        g.restarts += 1;
        g.max_backoff_ns = g.max_backoff_ns.max(backoff.as_nanos());
        Decision::Restart { attempt, backoff }
    }

    /// Ranks the supervisor has given up on so far.
    pub fn failed_ranks(&self) -> Vec<u32> {
        self.inner.lock().failed.clone()
    }

    /// Fold the supervisor's counters into a [`RecoverySummary`].
    pub fn fill(&self, sum: &mut RecoverySummary) {
        let g = self.inner.lock();
        sum.restarts_approved = g.restarts;
        sum.give_ups = g.give_ups;
        sum.failed_ranks = g.failed.clone();
        sum.max_backoff_ns = g.max_backoff_ns;
    }
}

/// The `recovery` section of a run report: what the snapshot protocol
/// and the supervision layer did. Serialized as `null` when neither ran,
/// keeping recovery-off reports byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RecoverySummary {
    /// Marker waves initiated.
    pub snapshots_started: u64,
    /// Consistent cuts completed (every rank posted its frame).
    pub snapshots_completed: u64,
    /// In-flight channel messages recorded across all cut frames.
    pub inflight_recorded: u64,
    /// Warm restores served from a consistent cut.
    pub cut_restores: u64,
    /// Total restores performed (cut or stop-world, warm or cold).
    pub restores: u64,
    /// Restarts the supervisor approved.
    pub restarts_approved: u64,
    /// Ranks whose restart budget was exhausted.
    pub give_ups: u64,
    /// The abandoned ranks, in give-up order.
    pub failed_ranks: Vec<u32>,
    /// Largest restart backoff imposed, in virtual ns.
    pub max_backoff_ns: u64,
    /// Largest warm-restore rollback, in generations.
    pub max_rollback: u64,
}

impl RecoverySummary {
    /// Element-wise accumulation across runs (maxima stay maxima).
    pub fn merge(&mut self, other: &RecoverySummary) {
        self.snapshots_started += other.snapshots_started;
        self.snapshots_completed += other.snapshots_completed;
        self.inflight_recorded += other.inflight_recorded;
        self.cut_restores += other.cut_restores;
        self.restores += other.restores;
        self.restarts_approved += other.restarts_approved;
        self.give_ups += other.give_ups;
        self.failed_ranks.extend_from_slice(&other.failed_ranks);
        self.max_backoff_ns = self.max_backoff_ns.max(other.max_backoff_ns);
        self.max_rollback = self.max_rollback.max(other.max_rollback);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_the_cap_then_budget_runs_out() {
        let sup = Supervisor::new(SupervisorPolicy {
            max_restarts: 4,
            backoff_base: SimTime::from_millis(10),
            backoff_cap: SimTime::from_millis(25),
        });
        let backoffs: Vec<u64> = (0..4)
            .map(|_| match sup.on_crash(1) {
                Decision::Restart { backoff, .. } => backoff.as_nanos() / 1_000_000,
                Decision::GiveUp { .. } => panic!("budget not yet exhausted"),
            })
            .collect();
        assert_eq!(backoffs, vec![10, 20, 25, 25], "doubling, then capped");
        assert_eq!(
            sup.on_crash(1),
            Decision::GiveUp { restarts: 4 },
            "fifth crash exhausts the budget"
        );
        assert_eq!(sup.failed_ranks(), vec![1]);
    }

    #[test]
    fn budgets_are_per_rank_but_counters_are_global() {
        let sup = Supervisor::new(SupervisorPolicy {
            max_restarts: 1,
            ..SupervisorPolicy::default()
        });
        assert!(matches!(
            sup.on_crash(0),
            Decision::Restart { attempt: 1, .. }
        ));
        assert!(matches!(
            sup.on_crash(2),
            Decision::Restart { attempt: 1, .. }
        ));
        assert!(matches!(sup.on_crash(0), Decision::GiveUp { restarts: 1 }));
        let mut sum = RecoverySummary::default();
        sup.fill(&mut sum);
        assert_eq!(sum.restarts_approved, 2);
        assert_eq!(sum.give_ups, 1);
        assert_eq!(sum.failed_ranks, vec![0]);
    }

    #[test]
    fn summary_merge_accumulates() {
        let mut a = RecoverySummary {
            snapshots_completed: 2,
            restores: 1,
            max_rollback: 3,
            ..RecoverySummary::default()
        };
        let b = RecoverySummary {
            snapshots_completed: 1,
            restores: 2,
            max_rollback: 5,
            failed_ranks: vec![7],
            ..RecoverySummary::default()
        };
        a.merge(&b);
        assert_eq!(a.snapshots_completed, 3);
        assert_eq!(a.restores, 3);
        assert_eq!(a.max_rollback, 5);
        assert_eq!(a.failed_ranks, vec![7]);
    }
}
