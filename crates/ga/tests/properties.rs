//! Property-based tests of the GA building blocks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use nscc_ga::{decode, Deme, GaParams, Genome, TestFn, ALL_FUNCTIONS};

fn any_function() -> impl Strategy<Value = TestFn> {
    prop::sample::select(ALL_FUNCTIONS.to_vec())
}

proptest! {
    /// Decoding any genome stays inside the function's domain.
    #[test]
    fn decode_stays_in_limits(f in any_function(), seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Genome::random(f.genome_bits(), &mut rng);
        let x = decode(f, &g);
        let (lo, hi) = f.limits();
        prop_assert_eq!(x.len(), f.dims());
        for v in x {
            prop_assert!((lo..=hi).contains(&v), "{} out of [{lo}, {hi}]", v);
        }
    }

    /// Crossover redistributes but never invents bits: at every position
    /// the children carry exactly the parents' bits.
    #[test]
    fn crossover_preserves_positional_bits(
        bits in 1usize..200,
        point_frac in 0.0f64..1.0,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Genome::random(bits, &mut rng);
        let b = Genome::random(bits, &mut rng);
        let point = ((bits as f64) * point_frac) as usize;
        let (c, d) = a.crossover(&b, point.min(bits));
        for i in 0..bits {
            let parents = [a.get(i), b.get(i)];
            let children = [c.get(i), d.get(i)];
            prop_assert!(
                parents == children || parents == [children[1], children[0]],
                "bit {i} was invented"
            );
        }
    }

    /// Mutation flips exactly the reported number of bits.
    #[test]
    fn mutation_reports_exact_flips(bits in 1usize..200, rate in 0.0f64..1.0, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let original = Genome::random(bits, &mut rng);
        let mut mutated = original.clone();
        let flips = mutated.mutate(rate, &mut rng);
        let actual = (0..bits).filter(|&i| mutated.get(i) != original.get(i)).count();
        prop_assert_eq!(flips, actual);
    }

    /// decode_uint round-trips through set bits.
    #[test]
    fn decode_uint_roundtrip(value in 0u64..1024, width in 10usize..=10, start in 0usize..20) {
        let mut g = Genome::zeros(start + width);
        for i in 0..width {
            g.set(start + i, (value >> (width - 1 - i)) & 1 == 1);
        }
        prop_assert_eq!(g.decode_uint(start, width), value);
    }

    /// A deme's best-ever fitness never regresses, whatever the seed.
    #[test]
    fn best_ever_is_monotone(f in any_function(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut deme = Deme::new(f, GaParams::default(), &mut rng);
        let mut prev = deme.best_ever().fitness;
        for _ in 0..10 {
            deme.step(&mut rng);
            let now = deme.best_ever().fitness;
            prop_assert!(now <= prev);
            prev = now;
        }
    }

    /// Incorporation never worsens the population's best and never
    /// changes its size.
    #[test]
    fn incorporate_is_safe(seed in 0u64..500, k in 1usize..30) {
        let f = TestFn::F1Sphere;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Deme::new(f, GaParams::default(), &mut rng);
        let b = Deme::new(f, GaParams::default(), &mut rng);
        let before_best = a.current_best();
        let before_len = a.population().len();
        a.incorporate(&b.migrants(k));
        prop_assert!(a.current_best() <= before_best);
        prop_assert_eq!(a.population().len(), before_len);
    }
}
