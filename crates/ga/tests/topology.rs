//! Migration-topology integration tests: sparse topologies trade traffic
//! for mixing speed.

use std::sync::Arc;

use parking_lot::Mutex;

use nscc_dsm::{Coherence, DsmWorld};
use nscc_ga::{
    run_island, ConvergenceBoard, CostModel, IslandConfig, IslandOutcome, MigrantBatch, StopPolicy,
    TestFn, Topology,
};
use nscc_msg::MsgConfig;
use nscc_net::{IdealMedium, Network};
use nscc_sim::{SimBuilder, SimTime};

fn run(topology: Topology, ranks: usize, seed: u64) -> (Vec<IslandOutcome>, u64) {
    let (dir, locs) = topology.build_directory(ranks, seed);
    let mut world: DsmWorld<MigrantBatch> = DsmWorld::new(
        Network::new(IdealMedium::new(SimTime::from_millis(1))),
        ranks,
        MsgConfig::default(),
        dir,
    );
    for &l in &locs {
        world.set_initial(l, Vec::new());
    }
    let board = ConvergenceBoard::new(ranks);
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    let mut sim = SimBuilder::new(seed);
    for r in 0..ranks {
        let node = world.node(r);
        let locs = locs.clone();
        let board = board.clone();
        let outcomes = Arc::clone(&outcomes);
        let cfg = IslandConfig {
            cost: CostModel::deterministic(),
            ..IslandConfig::paper(
                TestFn::F1Sphere,
                Coherence::PartialAsync { age: 3 },
                StopPolicy::FixedGenerations(40),
            )
        };
        sim.spawn(format!("island{r}"), move |ctx| {
            let out = run_island(ctx, node, &locs, &cfg, &board);
            outcomes.lock().push(out);
        });
    }
    sim.run().expect("simulation runs");
    let v = outcomes.lock().clone();
    (v, world.comm_stats().sent)
}

#[test]
fn all_topologies_run_to_completion() {
    for topology in [
        Topology::AllToAll,
        Topology::Ring,
        Topology::Random { k: 2 },
    ] {
        let (outs, sent) = run(topology, 6, 9);
        assert_eq!(outs.len(), 6, "{topology:?}");
        assert!(outs.iter().all(|o| o.generations == 40));
        assert!(sent > 0, "{topology:?} must exchange migrants");
    }
}

#[test]
fn ring_sends_fewer_migrant_copies_than_all_to_all() {
    let (_, all) = run(Topology::AllToAll, 8, 3);
    let (_, ring) = run(Topology::Ring, 8, 3);
    // All-to-all: 7 logical receivers per write; ring: 2.
    assert!(
        ring * 3 < all,
        "ring ({ring}) should send far fewer copies than all-to-all ({all})"
    );
}

#[test]
fn random_topology_respects_out_degree() {
    let (dir, locs) = Topology::Random { k: 3 }.build_directory(10, 5);
    for &l in &locs {
        assert_eq!(dir.meta(l).readers.len(), 3);
    }
    // Deterministic per seed.
    let (dir2, locs2) = Topology::Random { k: 3 }.build_directory(10, 5);
    for (&a, &b) in locs.iter().zip(&locs2) {
        assert_eq!(dir.meta(a).readers, dir2.meta(b).readers);
    }
}
