//! Integration test of the §6 future-work extension: dynamic (runtime)
//! staleness control for the island GA.

use std::sync::Arc;

use parking_lot::Mutex;

use nscc_dsm::{Coherence, Directory, DsmWorld};
use nscc_ga::{
    run_island, ConvergenceBoard, CostModel, IslandConfig, IslandOutcome, MigrantBatch, StopPolicy,
    TestFn,
};
use nscc_msg::MsgConfig;
use nscc_net::{EthernetBus, Network};
use nscc_sim::{SimBuilder, SimTime};

fn run(adaptive: Option<(u64, u64)>, seed: u64) -> (Vec<IslandOutcome>, nscc_dsm::DsmStats) {
    let ranks = 4;
    let mut dir = Directory::new();
    let locs = dir.add_per_rank("best", ranks);
    let mut world: DsmWorld<MigrantBatch> = DsmWorld::new(
        Network::new(EthernetBus::ten_mbps(seed)),
        ranks,
        MsgConfig::default(),
        dir,
    );
    for &l in &locs {
        world.set_initial(l, Vec::new());
    }
    let board = ConvergenceBoard::new(ranks);
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    let mut sim = SimBuilder::new(seed);
    for r in 0..ranks {
        let node = world.node(r);
        let locs = locs.clone();
        let board = board.clone();
        let outcomes = Arc::clone(&outcomes);
        let cfg = IslandConfig {
            cost: CostModel {
                // Strong skew: adaptation has something to react to.
                hiccup_rate_per_sec: 2.0,
                hiccup_stall: SimTime::from_millis(200),
                ..CostModel::default()
            },
            adaptive,
            ..IslandConfig::paper(
                TestFn::F6Rastrigin,
                Coherence::PartialAsync { age: 5 },
                StopPolicy::FixedGenerations(120),
            )
        };
        sim.spawn(format!("island{r}"), move |ctx| {
            let out = run_island(ctx, node, &locs, &cfg, &board);
            outcomes.lock().push(out);
        });
    }
    sim.run().expect("simulation runs");
    let v = outcomes.lock().clone();
    (v, world.total_stats())
}

#[test]
fn adaptive_age_runs_and_is_deterministic() {
    let (a, _) = run(Some((0, 40)), 3);
    let (b, _) = run(Some((0, 40)), 3);
    assert_eq!(a.len(), 4);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.generations, y.generations);
        assert_eq!(x.best, y.best);
        assert_eq!(x.end_time, y.end_time);
    }
}

#[test]
fn adaptive_age_reduces_blocking_versus_fixed_small_age() {
    // The controller's direct mechanism: under blocking pressure it widens
    // the staleness bound, so the adaptive run must block on fewer reads
    // than the fixed age-5 run facing the same skew.
    let (_, fixed) = run(None, 7);
    let (_, adaptive) = run(Some((0, 40)), 7);
    assert!(
        adaptive.blocked_reads < fixed.blocked_reads,
        "adaptive blocked {} times vs fixed {}",
        adaptive.blocked_reads,
        fixed.blocked_reads
    );
}
