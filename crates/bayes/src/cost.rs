//! Virtual CPU cost model for the samplers (see DESIGN.md §2 for the
//! calibration against Table 2's uniprocessor inference times).

use rand::rngs::StdRng;
use rand::Rng;

use nscc_sim::SimTime;

/// Per-node sampling cost with multiplicative jitter and rare long
/// *hiccups* (background daemons, paging — the per-node load skew of a
/// real workstation cluster that §5 says `Global_Read` tolerates).
///
/// Hiccups follow a hazard model: each charged compute interval of `b`
/// seconds stalls with probability `hiccup_rate_per_sec × b`, adding
/// `hiccup_stall` of virtual time. Every implementation — including the
/// serial baseline — runs under the same model, so comparisons are fair.
#[derive(Debug, Clone)]
pub struct BayesCost {
    /// CPU time to sample one node (CPT row lookup + inverse CDF).
    pub node_cost: SimTime,
    /// Multiplicative jitter half-width applied per charged interval.
    pub jitter: f64,
    /// Hiccups per second of compute (0 disables).
    pub hiccup_rate_per_sec: f64,
    /// Stall added by one hiccup.
    pub hiccup_stall: SimTime,
}

impl Default for BayesCost {
    /// Calibrated so a 54-node network converging in ~7000 samples costs
    /// ~11 s (Table 2's A/AA/C): ~24 µs per node sample on the 77 MHz
    /// POWER2; ±20% jitter; a ~300 ms stall roughly every 1.5 s of
    /// compute.
    fn default() -> Self {
        BayesCost {
            node_cost: SimTime::from_micros(24),
            jitter: 0.2,
            hiccup_rate_per_sec: 0.7,
            hiccup_stall: SimTime::from_millis(300),
        }
    }
}

impl BayesCost {
    /// No jitter or hiccups (tests, controlled studies).
    pub fn deterministic() -> Self {
        BayesCost {
            jitter: 0.0,
            hiccup_rate_per_sec: 0.0,
            ..BayesCost::default()
        }
    }

    /// Deterministic cost of sampling `nodes` nodes (no jitter source).
    pub fn iteration_cost(&self, nodes: u64) -> SimTime {
        self.node_cost * nodes
    }

    /// Jittered cost of sampling `nodes` nodes, including hiccup hazard.
    pub fn iteration_cost_jittered(&self, nodes: u64, rng: &mut StdRng) -> SimTime {
        let base = self.iteration_cost(nodes);
        let mut out = base;
        if self.jitter > 0.0 {
            let scale = 1.0 - self.jitter + 2.0 * self.jitter * rng.gen::<f64>();
            out = SimTime::from_secs_f64(base.as_secs_f64() * scale);
        }
        if self.hiccup_rate_per_sec > 0.0
            && rng.gen::<f64>() < self.hiccup_rate_per_sec * base.as_secs_f64()
        {
            out += self.hiccup_stall;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_cost_is_linear() {
        let c = BayesCost::deterministic();
        assert_eq!(c.iteration_cost(10), SimTime::from_micros(240));
        assert_eq!(c.iteration_cost(0), SimTime::ZERO);
    }

    #[test]
    fn jitter_bounds_without_hiccups() {
        let c = BayesCost {
            jitter: 0.3,
            hiccup_rate_per_sec: 0.0,
            ..BayesCost::default()
        };
        let base = c.iteration_cost(54).as_secs_f64();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let t = c.iteration_cost_jittered(54, &mut rng).as_secs_f64();
            assert!(t >= base * 0.699 && t <= base * 1.301);
        }
    }

    #[test]
    fn hiccup_hazard_scales_with_compute() {
        let c = BayesCost {
            jitter: 0.0,
            hiccup_rate_per_sec: 10.0,
            hiccup_stall: SimTime::from_millis(100),
            ..BayesCost::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        // 1000 intervals of 54 nodes * 30us = 1.62ms each => expected
        // hiccups ~ 10/s * 1.62s = ~16.
        let mut hiccups = 0;
        for _ in 0..1000 {
            if c.iteration_cost_jittered(54, &mut rng) > SimTime::from_millis(50) {
                hiccups += 1;
            }
        }
        assert!((8..=28).contains(&hiccups), "hiccups {hiccups}");
    }
}
