//! Likelihood weighting — the standard successor to logic sampling (Pearl
//! [15] discusses both). Instead of rejecting samples whose evidence
//! variables disagree, evidence nodes are *clamped* and each sample is
//! weighted by the likelihood of the evidence under its parents. Far more
//! efficient under unlikely evidence; provided as a library extension and
//! as a correctness cross-check for the rejection sampler.

use nscc_sim::SimTime;

use crate::cost::BayesCost;
use crate::network::{BeliefNetwork, Value};
use crate::sampling::{node_draw, Query, StopRule};

/// Weighted tally over the query values.
#[derive(Debug, Clone)]
pub struct WeightedTally {
    /// Total weight per query value.
    pub weights: Vec<f64>,
    /// Sum of squared weights (for the effective-sample-size CI).
    pub weight_sq_sum: f64,
    /// Samples drawn.
    pub drawn: u64,
}

impl WeightedTally {
    /// An empty tally for a query of the given arity.
    pub fn new(arity: usize) -> Self {
        WeightedTally {
            weights: vec![0.0; arity],
            weight_sq_sum: 0.0,
            drawn: 0,
        }
    }

    /// Total weight accumulated.
    pub fn total(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Posterior estimate (uniform until weight arrives).
    pub fn estimate(&self) -> Vec<f64> {
        let t = self.total();
        if t <= 0.0 {
            vec![1.0 / self.weights.len() as f64; self.weights.len()]
        } else {
            self.weights.iter().map(|w| w / t).collect()
        }
    }

    /// Kish effective sample size: `(Σw)² / Σw²`.
    pub fn effective_samples(&self) -> f64 {
        if self.weight_sq_sum <= 0.0 {
            0.0
        } else {
            let t = self.total();
            t * t / self.weight_sq_sum
        }
    }

    /// CI-based convergence on the effective sample size.
    pub fn converged(&self, rule: &StopRule) -> bool {
        let ess = self.effective_samples();
        if ess < rule.min_accepted as f64 {
            return false;
        }
        self.estimate()
            .iter()
            .all(|&p| rule.z * (p * (1.0 - p) / ess).sqrt() <= rule.halfwidth)
    }
}

/// Result of a likelihood-weighting run.
#[derive(Debug, Clone)]
pub struct LwResult {
    /// Posterior estimate.
    pub posterior: Vec<f64>,
    /// Samples drawn.
    pub samples: u64,
    /// Effective sample size at the end.
    pub effective_samples: f64,
    /// Virtual CPU time under the cost model.
    pub time: SimTime,
}

/// Draw one likelihood-weighted sample: evidence nodes are clamped, every
/// other node is forward-sampled, and the returned weight is the product
/// of the evidence likelihoods. Uses the same counter-based draws as the
/// rejection sampler (clamped nodes simply skip their draw).
pub fn weighted_sample(
    net: &BeliefNetwork,
    query: &Query,
    seed: u64,
    iter: u64,
    out: &mut Vec<Value>,
) -> f64 {
    out.clear();
    out.resize(net.len(), 0);
    let mut weight = 1.0;
    for idx in 0..net.len() {
        if let Some(&(_, v)) = query.evidence.iter().find(|&&(n, _)| n == idx) {
            out[idx] = v;
            weight *= net.cpt_row(idx, out)[v as usize];
        } else {
            let u = node_draw(seed, idx, iter);
            out[idx] = net.sample_node(idx, out, u);
        }
    }
    weight
}

/// Sequential likelihood-weighting inference with the §4.3-style stopping
/// rule applied to the effective sample size.
pub fn likelihood_weighting(
    net: &BeliefNetwork,
    query: &Query,
    rule: &StopRule,
    cost: &BayesCost,
    seed: u64,
    max_samples: u64,
) -> LwResult {
    use rand::SeedableRng;
    let mut cost_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC057_0002);
    let mut tally = WeightedTally::new(net.node(query.node).arity);
    let mut time = SimTime::ZERO;
    let mut sample = Vec::new();
    let check = 64;
    let mut iter = 0u64;
    while iter < max_samples {
        iter += 1;
        let w = weighted_sample(net, query, seed, iter, &mut sample);
        tally.drawn += 1;
        tally.weights[sample[query.node] as usize] += w;
        tally.weight_sq_sum += w * w;
        time += cost.iteration_cost_jittered(net.len() as u64, &mut cost_rng);
        if iter % check == 0 && tally.converged(rule) {
            break;
        }
    }
    LwResult {
        posterior: tally.estimate(),
        samples: tally.drawn,
        effective_samples: tally.effective_samples(),
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_posterior;
    use crate::examples::{fig1, figure1};
    use crate::sampling::sequential_inference;

    fn query() -> Query {
        Query {
            node: fig1::A,
            evidence: vec![(fig1::D, 1)],
        }
    }

    #[test]
    fn matches_exact_posterior() {
        let net = figure1();
        let exact = exact_posterior(&net, query().node, &query().evidence);
        let lw = likelihood_weighting(
            &net,
            &query(),
            &StopRule::default(),
            &BayesCost::deterministic(),
            3,
            5_000_000,
        );
        for (e, p) in exact.iter().zip(&lw.posterior) {
            assert!((e - p).abs() < 0.02, "{:?} vs {exact:?}", lw.posterior);
        }
    }

    #[test]
    fn agrees_with_rejection_sampling() {
        let net = figure1();
        let rule = StopRule::default();
        let cost = BayesCost::deterministic();
        let lw = likelihood_weighting(&net, &query(), &rule, &cost, 5, 5_000_000);
        let rej = sequential_inference(&net, &query(), &rule, &cost, 5, 5_000_000);
        for (a, b) in lw.posterior.iter().zip(&rej.posterior) {
            assert!((a - b).abs() < 0.03);
        }
    }

    #[test]
    fn beats_rejection_under_unlikely_evidence() {
        // Evidence C=true has prior ~0.08: rejection throws away ~92% of
        // its samples, LW keeps them all (weighted).
        let net = figure1();
        let hard = Query {
            node: fig1::A,
            evidence: vec![(fig1::C, 1)],
        };
        let rule = StopRule::default();
        let cost = BayesCost::deterministic();
        let lw = likelihood_weighting(&net, &hard, &rule, &cost, 7, 10_000_000);
        let rej = sequential_inference(&net, &hard, &rule, &cost, 7, 10_000_000);
        assert!(
            lw.samples * 2 < rej.samples,
            "LW needed {} draws, rejection {}",
            lw.samples,
            rej.samples
        );
    }

    #[test]
    fn clamped_nodes_keep_their_evidence_values() {
        let net = figure1();
        let mut s = Vec::new();
        for i in 1..50 {
            let w = weighted_sample(&net, &query(), 9, i, &mut s);
            assert_eq!(s[fig1::D], 1);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn effective_sample_size_is_sane() {
        let mut t = WeightedTally::new(2);
        // Uniform weights: ESS == n.
        for _ in 0..100 {
            t.weights[0] += 1.0;
            t.weight_sq_sum += 1.0;
        }
        assert!((t.effective_samples() - 100.0).abs() < 1e-9);
        // One dominant weight collapses the ESS.
        t.weights[1] += 1000.0;
        t.weight_sq_sum += 1000.0 * 1000.0;
        assert!(t.effective_samples() < 2.0);
    }
}
