//! # nscc-bayes — probabilistic inference for the NSCC reproduction
//!
//! Everything §3.2/§4.2.2 of the paper needs:
//!
//! * [`BeliefNetwork`] — DAG + CPTs (Pearl [15]), with exact inference by
//!   enumeration ([`exact_posterior`]) as ground truth.
//! * [`figure1`] — the example medical-diagnosis network of Figure 1.
//! * [`Table2Net`] — generators reproducing Table 2's four benchmark
//!   networks (random A/AA/C and a Hailfinder-statistics-alike).
//! * [`sequential_inference`] — logic sampling with the 90% CI ± 0.01
//!   stopping rule (the uniprocessor baseline of Table 2).
//! * [`Plan`] — the partitioned execution plan (graph partitioning,
//!   staged rounds, coalesced interface batches).
//! * [`run_parallel_inference`] — parallel logic sampling over the DSM in
//!   three disciplines: synchronous, fully asynchronous with rollback
//!   (anti-message corrections + counter-based reproducible draws), and
//!   partially asynchronous (`Global_Read`-throttled speculation).

#![warn(missing_docs)]

mod cost;
mod exact;
mod examples;
mod gen;
mod gibbs;
mod network;
mod parallel;
mod plan;
mod sampling;
mod weighting;

pub use cost::BayesCost;
pub use exact::{evidence_probability, exact_posterior};
pub use examples::{fig1, figure1};
pub use gen::{hailfinder_like, random_network, RandomNetConfig, Table2Net, TABLE2};
pub use gibbs::{gibbs_inference, GibbsResult};
pub use network::{binary_node, binary_root, BeliefNetwork, Node, NodeIdx, Value};
pub use parallel::{
    run_parallel_inference, BatchValues, BayesPartStats, ParallelBayesConfig, ParallelBayesResult,
    RollbackPolicy,
};
pub use plan::{Batch, BatchId, Plan, RoundPlan};
pub use sampling::{
    evidence_matches, forward_sample, node_draw, sequential_inference, Query, SeqResult, StopRule,
    Tally,
};
pub use weighting::{likelihood_weighting, weighted_sample, LwResult, WeightedTally};
