//! The partition plan: how a belief network maps onto `p` processors and
//! what they exchange.
//!
//! The network's skeleton is split with the graph partitioner; nodes whose
//! adjacent nodes fall in other partitions are *interface nodes* (§3.2).
//! Within one sampling iteration, values flow along the node DAG, so
//! cross-partition exchanges are organised in **rounds**: node `v`'s stage
//! is the largest number of cross-partition hops on any path into `v`, and
//! all interface values produced in round `r` travel together in one
//! *batch* message per `(src, dst, round)` triple (coalescing, as real
//! implementations do).

use std::collections::HashMap;

use nscc_partition::{edge_cut, partition};

use crate::network::{BeliefNetwork, NodeIdx, Value};
use crate::sampling::Query;

/// Index of a [`Batch`] within a [`Plan`].
pub type BatchId = usize;

/// One coalesced interface message: the values of `nodes` computed by
/// `src` in round `round` of every iteration, read by `dst`.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Producing partition.
    pub src: usize,
    /// Consuming partition.
    pub dst: usize,
    /// Round in which `src` computes (and publishes) these nodes.
    pub round: usize,
    /// The carried nodes, in fixed order.
    pub nodes: Vec<NodeIdx>,
}

/// Per-round schedule entry for one partition.
#[derive(Debug, Clone, Default)]
pub struct RoundPlan {
    /// Owned nodes to sample this round (topological order).
    pub compute: Vec<NodeIdx>,
    /// Batches this partition publishes at the end of this round.
    pub writes: Vec<BatchId>,
    /// Batches (produced by peers in this round) that the *next* round's
    /// computation may need; the synchronous discipline waits on them.
    pub reads_after: Vec<BatchId>,
}

/// The full static plan for a partitioned sampling run.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Number of partitions.
    pub parts: usize,
    /// Node → owning partition.
    pub assign: Vec<usize>,
    /// Node → round in which it is computed.
    pub stage: Vec<usize>,
    /// Total rounds per iteration.
    pub rounds: usize,
    /// All interface batches.
    pub batches: Vec<Batch>,
    /// Partition → its per-round schedule.
    pub schedules: Vec<Vec<RoundPlan>>,
    /// For each partition, a map from remote node to `(batch, index)`
    /// where its value can be found.
    pub value_index: Vec<HashMap<NodeIdx, (BatchId, usize)>>,
    /// Edge-cut of the underlying skeleton partition (Table 2 metric).
    pub edge_cut: usize,
    /// The partition that owns the query node and keeps the tally.
    pub query_owner: usize,
    /// Per-node default values for speculative (asynchronous) sampling.
    pub defaults: Vec<Value>,
    /// For each node, the owned nodes of each partition downstream of it
    /// (its partition-local dependents, in topological order): what a
    /// correction to that node's value forces the partition to resample
    /// (§3.2: "the child node and the values of all the nodes ...
    /// dependent on this node ... must be invalidated and recomputed").
    pub dependents: Vec<HashMap<NodeIdx, Vec<NodeIdx>>>,
}

impl Plan {
    /// Build a plan for `net` split across `parts` partitions. The plan
    /// guarantees the query partition also receives every evidence node's
    /// value (it needs them for the accept/reject decision).
    pub fn new(net: &BeliefNetwork, parts: usize, seed: u64, query: &Query) -> Plan {
        assert!(parts >= 1);
        let skeleton = net.skeleton();
        let assign = partition(&skeleton, parts, seed);
        let cut = edge_cut(&skeleton, &assign);
        let query_owner = assign[query.node];

        // Stages: one more than the deepest cross-partition hop count.
        let mut stage = vec![0usize; net.len()];
        for v in 0..net.len() {
            for &u in &net.node(v).parents {
                let hop = usize::from(assign[u] != assign[v]);
                stage[v] = stage[v].max(stage[u] + hop);
            }
        }
        let rounds = stage.iter().copied().max().unwrap_or(0) + 1;

        // Which (src, dst) pairs need which nodes: children edges, plus
        // evidence/query forwarding to the query owner.
        let mut need: HashMap<(usize, usize), Vec<NodeIdx>> = HashMap::new();
        let mut mark = |u: NodeIdx, dst: usize| {
            let src = assign[u];
            if src != dst {
                let v = need.entry((src, dst)).or_default();
                if !v.contains(&u) {
                    v.push(u);
                }
            }
        };
        for v in 0..net.len() {
            for &u in &net.node(v).parents {
                mark(u, assign[v]);
            }
        }
        for &(e, _) in &query.evidence {
            mark(e, query_owner);
        }

        // Coalesce per (src, dst, round); deterministic ordering.
        let mut batches: Vec<Batch> = Vec::new();
        let mut keys: Vec<(usize, usize)> = need.keys().copied().collect();
        keys.sort_unstable();
        for (src, dst) in keys {
            let mut nodes = need.remove(&(src, dst)).expect("key exists");
            nodes.sort_unstable();
            for r in 0..rounds {
                let in_round: Vec<NodeIdx> =
                    nodes.iter().copied().filter(|&u| stage[u] == r).collect();
                if !in_round.is_empty() {
                    batches.push(Batch {
                        src,
                        dst,
                        round: r,
                        nodes: in_round,
                    });
                }
            }
        }

        // Per-partition schedules and value indices.
        let mut schedules: Vec<Vec<RoundPlan>> = vec![vec![RoundPlan::default(); rounds]; parts];
        for v in 0..net.len() {
            schedules[assign[v]][stage[v]].compute.push(v);
        }
        for sched in &mut schedules {
            for round in sched.iter_mut() {
                round.compute.sort_unstable();
            }
        }
        let mut value_index: Vec<HashMap<NodeIdx, (BatchId, usize)>> = vec![HashMap::new(); parts];
        for (bid, b) in batches.iter().enumerate() {
            schedules[b.src][b.round].writes.push(bid);
            schedules[b.dst][b.round].reads_after.push(bid);
            for (i, &u) in b.nodes.iter().enumerate() {
                value_index[b.dst].insert(u, (bid, i));
            }
        }

        // Partition-local transitive dependents of each remote input node.
        let children = net.children();
        let mut dependents: Vec<HashMap<NodeIdx, Vec<NodeIdx>>> = vec![HashMap::new(); parts];
        for (part, index) in value_index.iter().enumerate() {
            for &input in index.keys() {
                let mut affected = vec![false; net.len()];
                let mut stack = vec![input];
                while let Some(u) = stack.pop() {
                    for &c in &children[u] {
                        if !affected[c] {
                            affected[c] = true;
                            stack.push(c);
                        }
                    }
                }
                let deps: Vec<NodeIdx> = (0..net.len())
                    .filter(|&v| affected[v] && assign[v] == part)
                    .collect();
                dependents[part].insert(input, deps);
            }
        }

        Plan {
            parts,
            assign,
            stage,
            rounds,
            batches,
            schedules,
            value_index,
            edge_cut: cut,
            query_owner,
            defaults: net.default_values(),
            dependents,
        }
    }

    /// All nodes owned by `part`, in topological order.
    pub fn owned(&self, part: usize) -> Vec<NodeIdx> {
        (0..self.assign.len())
            .filter(|&v| self.assign[v] == part)
            .collect()
    }

    /// Messages one full iteration sends (batches + one heartbeat per
    /// partition pair is added by the runtime).
    pub fn batches_per_iteration(&self) -> usize {
        self.batches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Table2Net;

    fn plan_for(netid: Table2Net, parts: usize) -> (BeliefNetwork, Plan) {
        let net = netid.build();
        let query = Query {
            node: net.len() - 1,
            evidence: vec![(0, 0)],
        };
        let plan = Plan::new(&net, parts, 42, &query);
        (net, plan)
    }

    #[test]
    fn single_partition_has_no_batches() {
        let (net, plan) = plan_for(Table2Net::A, 1);
        assert_eq!(plan.batches.len(), 0);
        assert_eq!(plan.rounds, 1);
        assert_eq!(plan.owned(0).len(), net.len());
        assert_eq!(plan.edge_cut, 0);
    }

    #[test]
    fn stages_respect_cross_partition_parent_order() {
        let (net, plan) = plan_for(Table2Net::A, 2);
        for v in 0..net.len() {
            for &u in &net.node(v).parents {
                if plan.assign[u] != plan.assign[v] {
                    assert!(
                        plan.stage[v] > plan.stage[u],
                        "cross edge {u}->{v} must advance the stage"
                    );
                } else {
                    assert!(plan.stage[v] >= plan.stage[u]);
                }
            }
        }
    }

    #[test]
    fn every_remote_parent_is_reachable_through_a_batch() {
        let (net, plan) = plan_for(Table2Net::Aa, 2);
        for v in 0..net.len() {
            for &u in &net.node(v).parents {
                if plan.assign[u] != plan.assign[v] {
                    let (bid, idx) = plan.value_index[plan.assign[v]][&u];
                    let b = &plan.batches[bid];
                    assert_eq!(b.nodes[idx], u);
                    assert_eq!(b.src, plan.assign[u]);
                    assert_eq!(b.dst, plan.assign[v]);
                    assert_eq!(b.round, plan.stage[u]);
                }
            }
        }
    }

    #[test]
    fn evidence_flows_to_the_query_owner() {
        let net = Table2Net::C.build();
        // Evidence on several nodes scattered through the network.
        let query = Query {
            node: net.len() - 1,
            evidence: vec![(0, 0), (10, 1), (25, 0)],
        };
        let plan = Plan::new(&net, 2, 42, &query);
        for &(e, _) in &query.evidence {
            if plan.assign[e] != plan.query_owner {
                assert!(
                    plan.value_index[plan.query_owner].contains_key(&e),
                    "evidence node {e} must reach the query owner"
                );
            }
        }
    }

    #[test]
    fn schedules_cover_every_node_exactly_once() {
        let (net, plan) = plan_for(Table2Net::Hailfinder, 2);
        let mut seen = vec![0usize; net.len()];
        for part in 0..plan.parts {
            for round in &plan.schedules[part] {
                for &v in &round.compute {
                    assert_eq!(plan.assign[v], part);
                    assert_eq!(plan.stage[v], {
                        let mut r = usize::MAX;
                        for (ri, rp) in plan.schedules[part].iter().enumerate() {
                            if rp.compute.contains(&v) {
                                r = ri;
                            }
                        }
                        r
                    });
                    seen[v] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn hailfinder_plan_has_few_batches() {
        let (_, plan) = plan_for(Table2Net::Hailfinder, 2);
        let (_, plan_a) = plan_for(Table2Net::A, 2);
        assert!(
            plan.edge_cut < plan_a.edge_cut,
            "hailfinder cut {} should be below A's {}",
            plan.edge_cut,
            plan_a.edge_cut
        );
    }

    #[test]
    fn batch_contents_are_disjoint_per_destination() {
        let (_, plan) = plan_for(Table2Net::Aa, 2);
        for dst in 0..plan.parts {
            let mut seen = std::collections::HashSet::new();
            for b in plan.batches.iter().filter(|b| b.dst == dst) {
                for &u in &b.nodes {
                    assert!(seen.insert(u), "node {u} appears in two batches to {dst}");
                }
            }
        }
    }
}
