//! Belief-network generators reproducing Table 2's benchmark networks.
//!
//! A, AA and C follow the paper's recipe [12] — random graphs on 54 binary
//! nodes with a prescribed edge density. The real Hailfinder network is
//! proprietary-ish (the paper itself says most real networks are and uses
//! mostly synthetic ones); `hailfinder_like` reproduces its *published
//! statistics*: 56 nodes, 1.2 edges/node, 4 values/node, and a structure
//! whose balanced bisection cuts only ~4 edges (two loosely coupled
//! halves).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::{BeliefNetwork, Node};

/// Parameters for a random DAG network.
#[derive(Debug, Clone)]
pub struct RandomNetConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Arity of every node.
    pub arity: usize,
    /// Cap on parents per node (bounds CPT size).
    pub max_parents: usize,
    /// RNG seed.
    pub seed: u64,
}

/// The four Table 2 benchmark networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Table2Net {
    /// Random, 54 nodes, 2.2 edges/node, binary.
    A,
    /// Random, 54 nodes, 2.4 edges/node, binary.
    Aa,
    /// Random, 54 nodes, 2.0 edges/node, binary.
    C,
    /// Hailfinder-like: 56 nodes, 1.2 edges/node, 4 values/node.
    Hailfinder,
}

/// All four networks in Table 2 order.
pub const TABLE2: [Table2Net; 4] = [
    Table2Net::A,
    Table2Net::Aa,
    Table2Net::C,
    Table2Net::Hailfinder,
];

impl Table2Net {
    /// Table 2 column label.
    pub fn name(self) -> &'static str {
        match self {
            Table2Net::A => "A",
            Table2Net::Aa => "AA",
            Table2Net::C => "C",
            Table2Net::Hailfinder => "Hailfinder",
        }
    }

    /// Build the network (deterministic).
    pub fn build(self) -> BeliefNetwork {
        match self {
            Table2Net::A => random_network(&RandomNetConfig {
                nodes: 54,
                edges: 119, // 2.2 per node
                arity: 2,
                max_parents: 8,
                seed: 0xA11CE,
            }),
            Table2Net::Aa => random_network(&RandomNetConfig {
                nodes: 54,
                edges: 130, // 2.4 per node
                arity: 2,
                max_parents: 8,
                seed: 0xAA22,
            }),
            Table2Net::C => random_network(&RandomNetConfig {
                nodes: 54,
                edges: 108, // 2.0 per node
                arity: 2,
                max_parents: 8,
                seed: 0xC0FFEE,
            }),
            Table2Net::Hailfinder => hailfinder_like(0x4A17),
        }
    }
}

/// Draw a skewed probability distribution over `arity` values.
///
/// Real diagnostic CPTs (Hailfinder's included) are strongly informative:
/// most rows have a clearly dominant outcome. We mirror that: 75% of rows
/// are near-deterministic (dominant mass ~0.85–0.97), the rest moderate.
/// The skew matters to the reproduction — the asynchronous §3.2
/// implementations gamble that a node sampled its *default* (most likely)
/// value, and that gamble must usually pay off, as it did for the paper.
fn random_distribution(arity: usize, rng: &mut StdRng) -> Vec<f64> {
    let n = arity as f64;
    let mut w: Vec<f64> = if rng.gen::<f64>() < 0.85 {
        let dominant = rng.gen_range(0..arity);
        let top = rng.gen_range(0.90..0.98);
        let rest = (1.0 - top) / (n - 1.0);
        (0..arity)
            .map(|v| if v == dominant { top } else { rest })
            .collect()
    } else {
        let mut raw: Vec<f64> = (0..arity)
            .map(|_| rng.gen::<f64>().powi(2) + 1e-6)
            .collect();
        let sum: f64 = raw.iter().sum();
        for x in &mut raw {
            *x /= sum;
        }
        raw
    };
    // Keep every entry strictly positive so no branch is impossible
    // (rejection sampling needs positive evidence probability).
    let eps = 1e-3;
    let sum: f64 = w.iter().sum();
    for x in &mut w {
        *x = (*x / sum + eps) / (1.0 + n * eps);
    }
    w
}

/// Build a node with random CPT given its parents' arities.
fn random_node(
    name: String,
    arity: usize,
    parents: Vec<usize>,
    parent_arities: &[usize],
    rng: &mut StdRng,
) -> Node {
    let combos: usize = parents.iter().map(|&p| parent_arities[p]).product();
    let mut cpt = Vec::with_capacity(combos * arity);
    for _ in 0..combos {
        cpt.extend(random_distribution(arity, rng));
    }
    Node {
        name,
        arity,
        parents,
        cpt,
    }
}

/// Generate a random belief network per the paper's recipe: a random DAG
/// with exactly `cfg.edges` edges (subject to the parent cap) and random
/// CPTs.
pub fn random_network(cfg: &RandomNetConfig) -> BeliefNetwork {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;
    let mut parent_sets: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = cfg.edges * 1000;
    while placed < cfg.edges && attempts < max_attempts {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let (src, dst) = (a.min(b), a.max(b));
        if parent_sets[dst].len() >= cfg.max_parents || parent_sets[dst].contains(&src) {
            continue;
        }
        parent_sets[dst].push(src);
        placed += 1;
    }
    assert_eq!(
        placed, cfg.edges,
        "could not place {} edges on {} nodes with parent cap {}",
        cfg.edges, n, cfg.max_parents
    );
    let arities = vec![cfg.arity; n];
    let nodes = parent_sets
        .into_iter()
        .enumerate()
        .map(|(i, mut parents)| {
            parents.sort_unstable();
            random_node(format!("n{i}"), cfg.arity, parents, &arities, &mut rng)
        })
        .collect();
    BeliefNetwork::new(nodes)
}

/// A Hailfinder-statistics-alike: 56 four-valued nodes in two loosely
/// coupled halves of 28, ~67 edges total (1.2/node) of which 4 cross the
/// halves — so a balanced bisection cuts 4 edges, matching Table 2.
pub fn hailfinder_like(seed: u64) -> BeliefNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 56; // two halves of 28 (evens / odds)
    let arity = 4;
    let max_parents = 3;
    let intra_per_half = 31; // 2*31 + 4 cross = 66 ≈ 1.2 * 56
    let mut parent_sets: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Interleave the halves in the topological order (evens = half 0,
    // odds = half 1) so a naive contiguous split does NOT separate them —
    // the partitioner has to discover the structure.
    let members = |h: usize| -> Vec<usize> { (0..n).filter(|i| i % 2 == h).collect() };
    for h in 0..2 {
        let m = members(h);
        let mut placed = 0;
        // A spine keeps each half connected (chain in topo order).
        for w in m.windows(2) {
            parent_sets[w[1]].push(w[0]);
            placed += 1;
        }
        while placed < intra_per_half {
            let i = rng.gen_range(0..m.len());
            let j = rng.gen_range(0..m.len());
            if i == j {
                continue;
            }
            let (src, dst) = (m[i].min(m[j]), m[i].max(m[j]));
            if parent_sets[dst].len() >= max_parents || parent_sets[dst].contains(&src) {
                continue;
            }
            parent_sets[dst].push(src);
            placed += 1;
        }
    }
    // Exactly 4 cross edges between the halves.
    let (m0, m1) = (members(0), members(1));
    let mut cross = 0;
    while cross < 4 {
        let a = m0[rng.gen_range(0..m0.len())];
        let b = m1[rng.gen_range(0..m1.len())];
        let (src, dst) = (a.min(b), a.max(b));
        if parent_sets[dst].len() >= max_parents + 1 || parent_sets[dst].contains(&src) {
            continue;
        }
        parent_sets[dst].push(src);
        cross += 1;
    }

    let arities = vec![arity; n];
    let nodes = parent_sets
        .into_iter()
        .enumerate()
        .map(|(i, mut parents)| {
            parents.sort_unstable();
            random_node(format!("hf{i}"), arity, parents, &arities, &mut rng)
        })
        .collect();
    BeliefNetwork::new(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscc_partition::{edge_cut, partition};

    #[test]
    fn table2_row_statistics() {
        for (net_id, nodes, epn) in [
            (Table2Net::A, 54, 2.2),
            (Table2Net::Aa, 54, 2.4),
            (Table2Net::C, 54, 2.0),
            (Table2Net::Hailfinder, 56, 1.2),
        ] {
            let net = net_id.build();
            assert_eq!(net.len(), nodes, "{}", net_id.name());
            assert!(
                (net.edges_per_node() - epn).abs() < 0.05,
                "{}: edges/node {} vs expected {}",
                net_id.name(),
                net.edges_per_node(),
                epn
            );
        }
        assert_eq!(Table2Net::A.build().max_arity(), 2);
        assert_eq!(Table2Net::Hailfinder.build().max_arity(), 4);
    }

    #[test]
    fn hailfinder_bisection_cut_is_tiny() {
        let net = Table2Net::Hailfinder.build();
        let g = net.skeleton();
        let parts = partition(&g, 2, 42);
        let cut = edge_cut(&g, &parts);
        assert!(
            cut <= 6,
            "hailfinder-like bisection should cut ~4 edges, got {cut}"
        );
    }

    #[test]
    fn random_nets_have_bigger_cuts_than_hailfinder() {
        let cut_of = |n: Table2Net| {
            let g = n.build().skeleton();
            edge_cut(&g, &partition(&g, 2, 42))
        };
        let hf = cut_of(Table2Net::Hailfinder);
        for n in [Table2Net::A, Table2Net::Aa, Table2Net::C] {
            assert!(
                cut_of(n) > 2 * hf.max(1),
                "{}'s cut should dwarf Hailfinder's",
                n.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a1 = Table2Net::A.build();
        let a2 = Table2Net::A.build();
        assert_eq!(a1.edge_count(), a2.edge_count());
        for i in 0..a1.len() {
            assert_eq!(a1.node(i).parents, a2.node(i).parents);
            assert_eq!(a1.node(i).cpt, a2.node(i).cpt);
        }
    }

    #[test]
    fn cpts_are_strictly_positive() {
        let net = Table2Net::Aa.build();
        for node in net.nodes() {
            assert!(node.cpt.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "could not place")]
    fn impossible_edge_demand_panics() {
        random_network(&RandomNetConfig {
            nodes: 4,
            edges: 100,
            arity: 2,
            max_parents: 2,
            seed: 1,
        });
    }
}
