//! Exact inference by enumeration — the ground truth the samplers are
//! validated against (tractable for the small networks of Table 2).

use crate::network::{BeliefNetwork, NodeIdx, Value};

/// The exact posterior distribution `p(query | evidence)` computed by full
/// enumeration over all joint assignments. Exponential in network size;
/// intended for tests and small networks.
pub fn exact_posterior(
    net: &BeliefNetwork,
    query: NodeIdx,
    evidence: &[(NodeIdx, Value)],
) -> Vec<f64> {
    let n = net.len();
    let arity = net.node(query).arity;
    let mut numer = vec![0.0f64; arity];
    let mut assignment: Vec<Value> = vec![0; n];

    enumerate(net, 0, 1.0, &mut assignment, evidence, &mut |joint, asg| {
        numer[asg[query] as usize] += joint;
    });

    let z: f64 = numer.iter().sum();
    assert!(z > 0.0, "evidence has zero probability");
    numer.iter().map(|&x| x / z).collect()
}

/// The probability that the evidence holds (acceptance rate of rejection
/// sampling).
pub fn evidence_probability(net: &BeliefNetwork, evidence: &[(NodeIdx, Value)]) -> f64 {
    let mut total = 0.0;
    let mut assignment: Vec<Value> = vec![0; net.len()];
    enumerate(net, 0, 1.0, &mut assignment, evidence, &mut |joint, _| {
        total += joint;
    });
    total
}

/// Recursive enumeration of assignments consistent with `evidence`,
/// invoking `visit(joint_probability, assignment)` for each.
fn enumerate(
    net: &BeliefNetwork,
    idx: usize,
    prob: f64,
    assignment: &mut Vec<Value>,
    evidence: &[(NodeIdx, Value)],
    visit: &mut impl FnMut(f64, &[Value]),
) {
    if idx == net.len() {
        visit(prob, assignment);
        return;
    }
    if prob == 0.0 {
        return; // dead branch
    }
    let fixed = evidence.iter().find(|&&(n, _)| n == idx).map(|&(_, v)| v);
    let row: Vec<f64> = net.cpt_row(idx, assignment).to_vec();
    for v in 0..net.node(idx).arity {
        if let Some(f) = fixed {
            if f as usize != v {
                continue;
            }
        }
        assignment[idx] = v as Value;
        enumerate(net, idx + 1, prob * row[v], assignment, evidence, visit);
    }
    assignment[idx] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{binary_node, binary_root, BeliefNetwork};

    fn rain_sprinkler() -> BeliefNetwork {
        // Classic: rain -> wet, sprinkler -> wet.
        BeliefNetwork::new(vec![
            binary_root("rain", 0.2),
            binary_root("sprinkler", 0.1),
            // combos (rain, sprinkler): FF, FT, TF, TT
            binary_node("wet", vec![0, 1], &[0.01, 0.9, 0.8, 0.99]),
        ])
    }

    #[test]
    fn prior_of_root_is_its_cpt() {
        let net = rain_sprinkler();
        let p = exact_posterior(&net, 0, &[]);
        assert!((p[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn explaining_away() {
        let net = rain_sprinkler();
        // p(rain | wet) > p(rain); but also knowing the sprinkler ran
        // explains the wetness away: p(rain | wet, sprinkler) < p(rain | wet).
        let p_wet = exact_posterior(&net, 0, &[(2, 1)]);
        let p_wet_spr = exact_posterior(&net, 0, &[(2, 1), (1, 1)]);
        assert!(p_wet[1] > 0.2);
        assert!(p_wet_spr[1] < p_wet[1]);
    }

    #[test]
    fn hand_computed_posterior() {
        let net = rain_sprinkler();
        // p(wet) = sum over (r,s): p(r)p(s)p(w|r,s)
        //        = .8*.9*.01 + .8*.1*.9 + .2*.9*.8 + .2*.1*.99
        let p_wet = 0.8 * 0.9 * 0.01 + 0.8 * 0.1 * 0.9 + 0.2 * 0.9 * 0.8 + 0.2 * 0.1 * 0.99;
        assert!((evidence_probability(&net, &[(2, 1)]) - p_wet).abs() < 1e-12);
        // p(rain | wet) = p(rain, wet) / p(wet)
        let p_rain_wet = 0.2 * 0.9 * 0.8 + 0.2 * 0.1 * 0.99;
        let post = exact_posterior(&net, 0, &[(2, 1)]);
        assert!((post[1] - p_rain_wet / p_wet).abs() < 1e-12);
    }

    #[test]
    fn posterior_sums_to_one() {
        let net = rain_sprinkler();
        for q in 0..3 {
            let p = exact_posterior(&net, q, &[(2, 1)]);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "zero probability")]
    fn impossible_evidence_panics() {
        let net = BeliefNetwork::new(vec![binary_root("x", 1.0)]);
        let _ = exact_posterior(&net, 0, &[(0, 0)]);
    }
}
