//! Parallel logic sampling over the DSM: synchronous, fully asynchronous
//! with rollback (anti-messages), and partially asynchronous
//! (`Global_Read`-throttled speculation), as §3.2 of the paper describes.
//!
//! **Iterations are blocks.** One "iteration" samples a block of `B`
//! complete network samples; interface values for the whole block travel
//! in one coalesced batch message (real message-passing samplers batch
//! exactly like this to amortize per-message CPU costs).
//!
//! **Speculation and rollback.** The asynchronous disciplines sample with
//! *default values* for missing remote inputs. Random draws are
//! counter-based (`node_draw(seed, node, sample)`), so recomputing an
//! iteration with corrected inputs reuses the same underlying randomness
//! — rollback is deterministic recomputation. A correction re-publishes a
//! batch under its original age, which is the collapsed form of a
//! TimeWarp anti-message + replacement message pair; receivers diff
//! corrected batches against what they *used* and roll back in turn.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use nscc_dsm::{Coherence, Directory, DsmNode, DsmStats, DsmWorld, LocId, Retired};
use nscc_msg::MsgConfig;
use nscc_net::Network;
use nscc_obs::{Hub, ObsEvent};
use nscc_sim::{Ctx, SimBuilder, SimError, SimTime};

use crate::cost::BayesCost;
use crate::network::{BeliefNetwork, Value};
use crate::plan::{BatchId, Plan};
use crate::sampling::{node_draw, Query, StopRule, Tally};

/// Wire payload: a block of values for one batch (node-major:
/// `vals[node_pos * block + sample_in_block]`), or empty for heartbeats.
pub type BatchValues = Vec<Value>;

/// How a partition reacts when a received value contradicts what it used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackPolicy {
    /// Time-Warp-style rollback ([2]): roll the process back to the
    /// earliest contradicted iteration and replay *every* recorded
    /// iteration from there forward, re-publishing corrections
    /// (anti-message + replacement pairs). Straying far ahead makes each
    /// rollback proportionally more expensive. Offered as an ablation
    /// (`ablation_rollback` bench).
    Replay,
    /// Per-sample invalidation — the default, and the paper's own §3.2
    /// description ("the value of the child node and the values of all
    /// the nodes ... dependent on this node ... must be invalidated and
    /// recomputed"): only contradicted sample columns are recomputed,
    /// sound because logic-sampling iterations are independent. Runahead
    /// still costs through the bounded rollback window (unconfirmed
    /// records evicted from it are discarded).
    Selective,
}

/// Configuration of one parallel inference run.
#[derive(Debug, Clone)]
pub struct ParallelBayesConfig {
    /// Coherence discipline.
    pub mode: Coherence,
    /// Rollback policy for the speculative disciplines.
    pub rollback: RollbackPolicy,
    /// Stopping rule on the query posterior.
    pub stop: StopRule,
    /// Compute-cost model.
    pub cost: BayesCost,
    /// Samples per iteration block.
    pub block: usize,
    /// Hard cap on iterations per partition.
    pub max_iterations: u64,
    /// Iteration records retained for rollback (older ones freeze).
    pub window: usize,
    /// Seed of the counter-based sampling draws (shared by all
    /// partitions so a (node, sample) pair always draws the same value).
    pub sample_seed: u64,
    /// Optional observability hub: attached to the DSM world, and fed an
    /// `AntiMessage` event for every correction a rollback re-publishes.
    pub obs: Option<Hub>,
}

impl ParallelBayesConfig {
    /// Paper-flavoured defaults for the given mode.
    pub fn new(mode: Coherence) -> Self {
        ParallelBayesConfig {
            mode,
            rollback: RollbackPolicy::Selective,
            stop: StopRule::default(),
            cost: BayesCost::default(),
            block: 8,
            max_iterations: 400_000,
            window: 64,
            sample_seed: 0x5EED,
            obs: None,
        }
    }
}

/// Per-partition counters.
#[derive(Debug, Clone, Default)]
pub struct BayesPartStats {
    /// Partition rank.
    pub rank: usize,
    /// Iterations (blocks) executed, including the initial computation of
    /// each block but not rollback recomputations.
    pub iterations: u64,
    /// Rollback recomputations performed.
    pub rollbacks: u64,
    /// Corrections that arrived for already-frozen iterations (counted,
    /// cannot be applied; see module docs).
    pub late_corrections: u64,
    /// Remote lookups that fell back to default values (speculation).
    pub default_uses: u64,
    /// Individual sample columns resampled by rollbacks.
    pub resampled: u64,
    /// Iteration records evicted from the rollback window while some of
    /// their speculative inputs were still unconfirmed. Their samples can
    /// never be trusted: at the query owner they are removed from the
    /// tally (wasted work — the cost of straying beyond the window).
    pub discarded: u64,
    /// Virtual time at which the partition left its loop.
    pub end_time: SimTime,
}

/// Result of one parallel inference run.
#[derive(Debug, Clone)]
pub struct ParallelBayesResult {
    /// Final posterior estimate at the query owner.
    pub posterior: Vec<f64>,
    /// Accepted samples contributing to the estimate.
    pub accepted: u64,
    /// Total samples drawn (accepted + rejected).
    pub drawn: u64,
    /// Virtual completion time (when the last partition exited).
    pub completion: SimTime,
    /// Per-partition counters.
    pub per_part: Vec<BayesPartStats>,
    /// Aggregate DSM counters.
    pub dsm: DsmStats,
    /// Whether the stop rule was satisfied (vs. the iteration cap).
    pub converged: bool,
}

/// One iteration record retained for rollback.
struct IterRecord {
    /// Owned node values, owned-major (`owned_pos * block + s`).
    values: Vec<Value>,
    /// Per incoming batch: `Some(batch values)` actually used, or `None`
    /// when defaults were used.
    used: HashMap<BatchId, Option<BatchValues>>,
    /// Outgoing batch values as last published.
    published: HashMap<BatchId, BatchValues>,
    /// Query-owner only: per sample, `Some(query value)` if the evidence
    /// matched (accepted), else `None`.
    contribution: Vec<Option<Value>>,
}

/// Everything one partition's process needs.
struct PartRuntime {
    rank: usize,
    net: Arc<BeliefNetwork>,
    plan: Arc<Plan>,
    query: Arc<Query>,
    cfg: ParallelBayesConfig,
    /// Owned nodes in topological order and their dense positions.
    owned: Vec<usize>,
    owned_pos: HashMap<usize, usize>,
    /// LocId of each batch (index = BatchId) and each heartbeat.
    batch_locs: Arc<Vec<LocId>>,
    hb_locs: Arc<Vec<LocId>>,
    records: BTreeMap<u64, IterRecord>,
    tally: Tally,
    stats: BayesPartStats,
    /// Shared stop flag (set by the query owner when the CI rule fires).
    stop_flag: Arc<Mutex<bool>>,
    /// True when some peer receives no batch traffic from this partition
    /// and therefore needs explicit heartbeats.
    hb_needed: bool,
}

impl PartRuntime {
    /// The location whose age tracks peer `q`'s progress: its first batch
    /// to us if any (updates double as heartbeats), else its heartbeat.
    fn throttle_loc(&self, q: usize) -> LocId {
        self.plan
            .batches
            .iter()
            .enumerate()
            .find(|(_, b)| b.src == q && b.dst == self.rank)
            .map(|(bid, _)| self.batch_locs[bid])
            .unwrap_or(self.hb_locs[q])
    }
    fn in_batches(&self) -> impl Iterator<Item = BatchId> + '_ {
        (0..self.plan.batches.len()).filter(move |&b| self.plan.batches[b].dst == self.rank)
    }

    fn out_batches(&self) -> impl Iterator<Item = BatchId> + '_ {
        (0..self.plan.batches.len()).filter(move |&b| self.plan.batches[b].src == self.rank)
    }

    /// Value of node `u` for sample `s` of iteration `iter`, resolving
    /// remote nodes through the given record's `used` map (fetching from
    /// the DSM window on first use).
    fn lookup(&mut self, node: &DsmNode<BatchValues>, iter: u64, s: usize, u: usize) -> Value {
        if let Some(&pos) = self.owned_pos.get(&u) {
            let rec = self
                .records
                .get(&iter)
                .expect("record exists during compute");
            return rec.values[pos * self.cfg.block + s];
        }
        let (bid, idx) = self.plan.value_index[self.rank][&u];
        let loc = self.batch_locs[bid];
        let block = self.cfg.block;
        let rec = self
            .records
            .get_mut(&iter)
            .expect("record exists during compute");
        let used = rec
            .used
            .entry(bid)
            .or_insert_with(|| node.get_version(loc, iter).cloned());
        match used {
            Some(vals) => vals[idx * block + s],
            None => {
                self.stats.default_uses += 1;
                self.plan.defaults[u]
            }
        }
    }

    /// (Re)compute the given sample columns of iteration `iter`: refresh
    /// remote inputs when `refetch`, resample owned nodes for those
    /// columns — all of them, or only the per-column `affected` dependent
    /// sets — refresh their tally contribution, and return the outgoing
    /// batches whose content changed. The caller charges CPU for the
    /// node×sample resamples it requested.
    fn recompute_samples(
        &mut self,
        node: &DsmNode<BatchValues>,
        iter: u64,
        samples: &[usize],
        refetch: bool,
        affected: Option<&BTreeMap<usize, Vec<usize>>>,
    ) -> Vec<(BatchId, BatchValues)> {
        let block = self.cfg.block;
        let owned_len = self.owned.len();
        if !self.records.contains_key(&iter) {
            self.records.insert(
                iter,
                IterRecord {
                    values: vec![0; owned_len * block],
                    used: HashMap::new(),
                    published: HashMap::new(),
                    contribution: vec![None; block],
                },
            );
        } else if refetch {
            // Rollback: refresh every remote input from the DSM window.
            let bids: Vec<BatchId> = self.in_batches().collect();
            let rec = self.records.get_mut(&iter).expect("just checked");
            rec.used.clear();
            for bid in bids {
                let v = node.get_version(self.batch_locs[bid], iter).cloned();
                rec.used.insert(bid, v);
            }
        }

        // Resample owned nodes in topological order for the given columns
        // (dependent subsets are precomputed in topological order too).
        let owned = self.owned.clone();
        for &s in samples {
            let nodes: &[usize] = match affected {
                Some(map) => map.get(&s).map(|v| v.as_slice()).unwrap_or(&owned),
                None => &owned,
            };
            let sample_index = (iter - 1) * block as u64 + s as u64 + 1;
            for &v in nodes.to_vec().iter() {
                // Gather parent values into a scratch assignment.
                let parents = self.net.node(v).parents.clone();
                let mut asg = vec![0u8; self.net.len()];
                for &u in &parents {
                    asg[u] = self.lookup(node, iter, s, u);
                }
                let u01 = node_draw(self.cfg.sample_seed, v, sample_index);
                let val = self.net.sample_node(v, &asg, u01);
                let pos = self.owned_pos[&v];
                let rec = self.records.get_mut(&iter).expect("record exists");
                rec.values[pos * block + s] = val;
            }
        }

        // Tally at the query owner: subtract the old contribution, add
        // the new (the anti-sample side of rollback).
        if self.rank == self.plan.query_owner {
            let evidence = self.query.evidence.clone();
            let qnode = self.query.node;
            for &s in samples {
                let mut ok = true;
                for &(e, want) in &evidence {
                    if self.lookup(node, iter, s, e) != want {
                        ok = false;
                        break;
                    }
                }
                let new_c = if ok {
                    Some(self.lookup(node, iter, s, qnode))
                } else {
                    None
                };
                let rec = self.records.get_mut(&iter).expect("record exists");
                let old_c = std::mem::replace(&mut rec.contribution[s], new_c);
                if let Some(v) = old_c {
                    self.tally.counts[v as usize] -= 1;
                }
                if let Some(v) = new_c {
                    self.tally.counts[v as usize] += 1;
                }
            }
        }

        // Detect changed outgoing batches.
        let mut changed = Vec::new();
        let out: Vec<BatchId> = self.out_batches().collect();
        for bid in out {
            let vals = self.collect_batch(bid, iter);
            let rec = self.records.get_mut(&iter).expect("record exists");
            if rec.published.get(&bid) != Some(&vals) {
                rec.published.insert(bid, vals.clone());
                changed.push((bid, vals));
            }
        }
        changed
    }

    /// Gather the current values of an outgoing batch from the record.
    fn collect_batch(&self, bid: BatchId, iter: u64) -> BatchValues {
        let block = self.cfg.block;
        let rec = self.records.get(&iter).expect("record exists");
        let b = &self.plan.batches[bid];
        let mut vals = Vec::with_capacity(b.nodes.len() * block);
        for &u in &b.nodes {
            let pos = self.owned_pos[&u];
            vals.extend_from_slice(&rec.values[pos * block..(pos + 1) * block]);
        }
        vals
    }

    /// Changed cells of batch `bid` at iteration `age`: for each sample
    /// column whose *effective* value (actual-or-default per node) differs
    /// between what the record used and what the DSM window now holds,
    /// the set of input nodes that changed.
    fn changed_cells(
        &self,
        bid: BatchId,
        used: &Option<BatchValues>,
        current: &Option<BatchValues>,
    ) -> Vec<(usize, Vec<usize>)> {
        let block = self.cfg.block;
        let nodes = &self.plan.batches[bid].nodes;
        (0..block)
            .filter_map(|s| {
                let changed: Vec<usize> = nodes
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, &u)| {
                        let uv = used
                            .as_ref()
                            .map(|v| v[idx * block + s])
                            .unwrap_or(self.plan.defaults[u]);
                        let cv = current
                            .as_ref()
                            .map(|v| v[idx * block + s])
                            .unwrap_or(self.plan.defaults[u]);
                        (uv != cv).then_some(u)
                    })
                    .collect();
                (!changed.is_empty()).then_some((s, changed))
            })
            .collect()
    }

    /// Drain arrived updates; roll back any recorded iteration whose used
    /// inputs no longer match the DSM window. Publishes corrections.
    fn process_updates(&mut self, ctx: &mut Ctx, node: &mut DsmNode<BatchValues>) {
        node.drain(ctx);
        let log = node.take_update_log();
        if log.is_empty() {
            return;
        }
        let frozen_before = self.records.keys().next().copied().unwrap_or(0);
        // Iteration -> column -> changed input nodes.
        let mut dirty: BTreeMap<u64, BTreeMap<usize, Vec<usize>>> = BTreeMap::new();
        for (loc, age) in log {
            let bid = loc.index();
            if bid >= self.plan.batches.len() {
                continue; // heartbeat
            }
            if age == nscc_dsm::RETIRE_AGE {
                continue;
            }
            match self.records.get(&age) {
                Some(rec) => {
                    if let Some(used) = rec.used.get(&bid) {
                        let current = node.get_version(loc, age).cloned();
                        let cells = self.changed_cells(bid, used, &current);
                        if cells.is_empty() {
                            // Confirmation: the arrival matches what we
                            // speculated — mark the input as settled.
                            if used.is_none() {
                                self.records
                                    .get_mut(&age)
                                    .expect("record exists")
                                    .used
                                    .insert(bid, current);
                            }
                        } else {
                            let entry = dirty.entry(age).or_default();
                            for (c, inputs) in cells {
                                let slot = entry.entry(c).or_default();
                                for u in inputs {
                                    if !slot.contains(&u) {
                                        slot.push(u);
                                    }
                                }
                            }
                        }
                    }
                }
                None => {
                    if age < frozen_before {
                        self.stats.late_corrections += 1;
                    }
                    // Otherwise: a future iteration we have not computed
                    // yet; it will pick the value up at compute time.
                }
            }
        }
        if dirty.is_empty() {
            return;
        }
        // Work list under the chosen policy: per iteration, the columns to
        // redo and (for Selective) the dependent nodes per column.
        let work: Vec<(u64, Vec<usize>, Option<BTreeMap<usize, Vec<usize>>>)> =
            match self.cfg.rollback {
                RollbackPolicy::Selective => dirty
                    .into_iter()
                    .map(|(age, cells)| {
                        let cols: Vec<usize> = cells.keys().copied().collect();
                        let affected: BTreeMap<usize, Vec<usize>> = cells
                            .into_iter()
                            .map(|(c, inputs)| {
                                let mut nodes: Vec<usize> = inputs
                                    .iter()
                                    .flat_map(|u| {
                                        self.plan.dependents[self.rank]
                                            .get(u)
                                            .cloned()
                                            .unwrap_or_default()
                                    })
                                    .collect();
                                nodes.sort_unstable();
                                nodes.dedup();
                                (c, nodes)
                            })
                            .collect();
                        (age, cols, Some(affected))
                    })
                    .collect(),
                RollbackPolicy::Replay => {
                    // Roll back to the earliest contradiction and replay
                    // every recorded iteration from there forward, in full.
                    let from = *dirty.keys().next().expect("dirty nonempty");
                    let all: Vec<usize> = (0..self.cfg.block).collect();
                    self.records
                        .keys()
                        .copied()
                        .filter(|&a| a >= from)
                        .map(|a| (a, all.clone(), None))
                        .collect()
                }
            };
        for (age, mut cols, affected) in work {
            cols.sort_unstable();
            self.stats.rollbacks += 1;
            // Rollback recomputation costs real CPU, proportional to the
            // node×sample resamples actually performed.
            let resamples: u64 = match &affected {
                Some(map) => map.values().map(|v| v.len() as u64).sum(),
                None => self.owned.len() as u64 * cols.len() as u64,
            };
            self.stats.resampled += resamples;
            let changed = self.recompute_samples(node, age, &cols, true, affected.as_ref());
            ctx.advance(self.cfg.cost.iteration_cost(resamples));
            for (bid, vals) in changed {
                // Each correction is the collapsed anti-message +
                // replacement pair of the Time-Warp protocol.
                if let Some(hub) = &self.cfg.obs {
                    hub.emit(ObsEvent::AntiMessage {
                        t_ns: ctx.now().as_nanos(),
                        rank: self.rank as u32,
                        loc: self.batch_locs[bid].0,
                        age,
                    });
                }
                node.write(ctx, self.batch_locs[bid], vals, age);
            }
        }
    }

    /// Drop records older than the window. A record whose speculative
    /// inputs were all *confirmed* folds its tally contribution into the
    /// permanent counts; an unconfirmed (unsettled) record is wasted —
    /// its contribution is withdrawn, because no correction can reach it
    /// anymore. This is the real cost of straying far ahead: speculation
    /// beyond the rollback window produces samples that cannot be
    /// trusted.
    fn freeze(&mut self, current: u64) {
        let horizon = current.saturating_sub(self.cfg.window as u64);
        let in_bids: Vec<BatchId> = self.in_batches().collect();
        while let Some((&oldest, _)) = self.records.iter().next() {
            if oldest >= horizon {
                break;
            }
            let rec = self.records.remove(&oldest).expect("entry exists");
            let settled = in_bids
                .iter()
                .all(|b| matches!(rec.used.get(b), Some(Some(_))));
            if !settled {
                self.stats.discarded += 1;
                if self.rank == self.plan.query_owner {
                    for c in rec.contribution.iter().flatten() {
                        self.tally.counts[*c as usize] -= 1;
                    }
                }
            }
        }
    }
}

/// Run a full parallel inference experiment: builds the plan, the DSM
/// world over `network`, spawns one simulated process per partition, and
/// returns the aggregated result.
pub fn run_parallel_inference(
    net: Arc<BeliefNetwork>,
    query: Query,
    parts: usize,
    cfg: ParallelBayesConfig,
    network: Network,
    msg_cfg: MsgConfig,
    sim_seed: u64,
) -> Result<ParallelBayesResult, SimError> {
    let plan = Arc::new(Plan::new(&net, parts, sim_seed ^ 0x9A97, &query));
    let query = Arc::new(query);

    // Directory: one location per batch, then one heartbeat per partition.
    let mut dir = Directory::new();
    let mut batch_locs = Vec::with_capacity(plan.batches.len());
    for (bid, b) in plan.batches.iter().enumerate() {
        batch_locs.push(dir.add(format!("batch{bid}_{}to{}", b.src, b.dst), b.src, [b.dst]));
    }
    let mut hb_locs = Vec::with_capacity(parts);
    for p in 0..parts {
        hb_locs.push(dir.add(format!("hb{p}"), p, 0..parts));
    }
    let batch_locs = Arc::new(batch_locs);
    let hb_locs = Arc::new(hb_locs);

    let mut world: DsmWorld<BatchValues> =
        DsmWorld::new(network, parts, msg_cfg, dir).with_history(2 * cfg.window + 8);
    if let Some(hub) = &cfg.obs {
        world = world.with_obs(hub.clone());
    }
    for &l in batch_locs.iter().chain(hb_locs.iter()) {
        world.set_initial(l, Vec::new());
    }

    let stop_flag = Arc::new(Mutex::new(false));
    let results: Arc<Mutex<Vec<Option<(BayesPartStats, Option<Tally>, bool)>>>> =
        Arc::new(Mutex::new(vec![None; parts]));

    let mut sim = SimBuilder::new(sim_seed);
    // The sampling profiler is driven by the scheduler; only attach it
    // there when profiling is on, so plain json/trace runs keep their
    // span-free reports byte-for-byte.
    // Wall-clock scheduler accounting is span-free and kept outside the
    // deterministic report sections, so it attaches whenever requested.
    if let Some(hub) = cfg.obs.as_ref().filter(|h| h.wants_wall()) {
        sim.attach_wall(hub.clone());
    }
    if let Some(hub) = cfg.obs.as_ref().filter(|h| h.profile_period() > 0) {
        sim.attach_obs(hub.clone());
    }
    for rank in 0..parts {
        let node = world.node(rank);
        let owned = plan.owned(rank);
        let owned_pos: HashMap<usize, usize> =
            owned.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let rt = PartRuntime {
            rank,
            net: Arc::clone(&net),
            plan: Arc::clone(&plan),
            query: Arc::clone(&query),
            cfg: cfg.clone(),
            owned,
            owned_pos,
            batch_locs: Arc::clone(&batch_locs),
            hb_locs: Arc::clone(&hb_locs),
            records: BTreeMap::new(),
            tally: Tally::new(net.node(query.node).arity),
            stats: BayesPartStats {
                rank,
                ..BayesPartStats::default()
            },
            stop_flag: Arc::clone(&stop_flag),
            hb_needed: (0..parts)
                .any(|q| q != rank && !plan.batches.iter().any(|b| b.src == rank && b.dst == q)),
        };
        let results = Arc::clone(&results);
        sim.spawn(format!("bayes{rank}"), move |ctx| {
            let out = partition_body(ctx, node, rt);
            results.lock()[rank] = Some(out);
        });
    }
    let report = sim.run()?;

    let mut per_part = Vec::with_capacity(parts);
    let mut tally_opt = None;
    let mut converged = false;
    for slot in results.lock().drain(..) {
        let (stats, t, c) = slot.expect("every partition reports");
        per_part.push(stats);
        if let Some(t) = t {
            tally_opt = Some(t);
            converged = c;
        }
    }
    let tally = tally_opt.expect("query owner reports a tally");
    Ok(ParallelBayesResult {
        posterior: tally.estimate(),
        accepted: tally.accepted(),
        drawn: tally.drawn,
        completion: report.end_time,
        per_part,
        dsm: world.total_stats(),
        converged,
    })
}

/// The body of one partition's simulated process.
fn partition_body(
    ctx: &mut Ctx,
    mut node: DsmNode<BatchValues>,
    mut rt: PartRuntime,
) -> (BayesPartStats, Option<Tally>, bool) {
    let parts = rt.plan.parts;
    let rank = rt.rank;
    let is_query_owner = rank == rt.plan.query_owner;
    let mode = rt.cfg.mode;
    let block = rt.cfg.block as u64;
    let mut converged = false;
    let mut iter: u64 = 0;

    'outer: while iter < rt.cfg.max_iterations {
        if *rt.stop_flag.lock() {
            break;
        }
        iter += 1;

        // Throttle: the Global_Read gate on every peer's progress. The
        // synchronous discipline is the age-0 case of the same gate. The
        // gate reads the peer's first batch location when one exists
        // (every update doubles as a progress heartbeat), falling back to
        // a dedicated heartbeat location for peers that send us nothing.
        if parts > 1 {
            let throttle_age = match mode {
                Coherence::Synchronous => Some(0),
                Coherence::PartialAsync { age } => Some(age),
                Coherence::FullyAsync => None,
            };
            if let Some(a) = throttle_age {
                for q in 0..parts {
                    if q != rank {
                        // Require progress_q >= (iter-1) - a.
                        let loc = rt.throttle_loc(q);
                        let (_, _) = node.global_read(ctx, loc, iter.saturating_sub(1), a);
                    }
                }
            }
        }

        // Apply any corrections that arrived while we were away.
        if !matches!(mode, Coherence::Synchronous) {
            rt.process_updates(ctx, &mut node);
        }

        // Compute the block round by round.
        rt.compute_iteration_start(iter);
        for r in 0..rt.plan.rounds {
            // Wait for (sync) or opportunistically drain (async/partial)
            // the batches produced by peers in earlier rounds.
            if r > 0 && parts > 1 {
                let reads: Vec<BatchId> = rt.plan.schedules[rank][r - 1].reads_after.clone();
                for bid in reads {
                    if matches!(mode, Coherence::Synchronous) {
                        match node.wait_version(ctx, rt.batch_locs[bid], iter) {
                            Ok(_) => {}
                            Err(Retired) => break 'outer,
                        }
                    }
                }
                if !matches!(mode, Coherence::Synchronous) {
                    node.drain(ctx);
                }
            }
            let compute: Vec<usize> = rt.plan.schedules[rank][r].compute.clone();
            if compute.is_empty() {
                continue;
            }
            rt.compute_round(&node, iter, &compute);
            let cost = rt
                .cfg
                .cost
                .iteration_cost_jittered(compute.len() as u64 * block, ctx.rng());
            ctx.advance(cost);
            // Publish this round's outgoing batches.
            let writes: Vec<BatchId> = rt.plan.schedules[rank][r].writes.clone();
            for bid in writes {
                let vals = rt.collect_batch(bid, iter);
                rt.records
                    .get_mut(&iter)
                    .expect("record exists")
                    .published
                    .insert(bid, vals.clone());
                node.write(ctx, rt.batch_locs[bid], vals, iter);
            }
        }
        // The synchronous discipline must also have the *last* round's
        // incoming batches (evidence forwarded to the query owner is
        // consumed by the tally, not by compute) before tallying.
        if matches!(mode, Coherence::Synchronous) && parts > 1 {
            let reads: Vec<BatchId> = rt.plan.schedules[rank][rt.plan.rounds - 1]
                .reads_after
                .clone();
            for bid in reads {
                match node.wait_version(ctx, rt.batch_locs[bid], iter) {
                    Ok(_) => {}
                    Err(Retired) => break 'outer,
                }
            }
            // Sync never rolls back; keep the log from accumulating.
            let _ = node.take_update_log();
        }
        rt.finish_tally(&node, iter);
        rt.stats.iterations = iter;
        rt.freeze(iter);

        // Heartbeat: "I completed iteration `iter`" — only sent to peers
        // that receive no batch traffic from us (batches already carry
        // the progress signal).
        if rt.hb_needed {
            node.write(ctx, rt.hb_locs[rank], Vec::new(), iter);
        }

        // Convergence detection at the query owner.
        if is_query_owner {
            rt.tally.drawn = iter * block;
            if rt.tally.converged(&rt.cfg.stop) {
                converged = true;
                *rt.stop_flag.lock() = true;
            }
        }
    }

    // Retire owned locations so blocked peers unblock and observe
    // termination.
    if parts > 1 {
        let outs: Vec<BatchId> = rt.out_batches().collect();
        for bid in outs {
            node.retire(ctx, rt.batch_locs[bid], Vec::new());
        }
        node.retire(ctx, rt.hb_locs[rank], Vec::new());
    }
    rt.stats.end_time = ctx.now();

    let tally = if is_query_owner {
        let mut t = rt.tally.clone();
        t.drawn = rt.stats.iterations * block;
        Some(t)
    } else {
        None
    };
    (rt.stats, tally, converged)
}

impl PartRuntime {
    /// Ensure the record for `iter` exists (fresh compute path).
    fn compute_iteration_start(&mut self, iter: u64) {
        let block = self.cfg.block;
        let owned_len = self.owned.len();
        self.records.entry(iter).or_insert_with(|| IterRecord {
            values: vec![0; owned_len * block],
            used: HashMap::new(),
            published: HashMap::new(),
            contribution: vec![None; block],
        });
    }

    /// Sample the given owned nodes (one round) for every sample in the
    /// block of `iter`.
    fn compute_round(&mut self, node: &DsmNode<BatchValues>, iter: u64, compute: &[usize]) {
        let block = self.cfg.block;
        for s in 0..block {
            let sample_index = (iter - 1) * block as u64 + s as u64 + 1;
            for &v in compute {
                let parents = self.net.node(v).parents.clone();
                let mut asg = vec![0u8; self.net.len()];
                for &u in &parents {
                    asg[u] = self.lookup(node, iter, s, u);
                }
                let u01 = node_draw(self.cfg.sample_seed, v, sample_index);
                let val = self.net.sample_node(v, &asg, u01);
                let pos = self.owned_pos[&v];
                let rec = self.records.get_mut(&iter).expect("record exists");
                rec.values[pos * block + s] = val;
            }
        }
    }

    /// Compute the tally contribution of `iter` at the query owner.
    fn finish_tally(&mut self, node: &DsmNode<BatchValues>, iter: u64) {
        if self.rank != self.plan.query_owner {
            return;
        }
        let block = self.cfg.block;
        let evidence = self.query.evidence.clone();
        let qnode = self.query.node;
        let mut newc: Vec<Option<Value>> = vec![None; block];
        for (s, slot) in newc.iter_mut().enumerate() {
            let mut ok = true;
            for &(e, want) in &evidence {
                if self.lookup(node, iter, s, e) != want {
                    ok = false;
                    break;
                }
            }
            if ok {
                *slot = Some(self.lookup(node, iter, s, qnode));
            }
        }
        let rec = self.records.get_mut(&iter).expect("record exists");
        let old = std::mem::replace(&mut rec.contribution, newc.clone());
        for s in 0..block {
            if let Some(v) = old[s] {
                self.tally.counts[v as usize] -= 1;
            }
            if let Some(v) = newc[s] {
                self.tally.counts[v as usize] += 1;
            }
        }
    }
}
