//! Logic sampling (Pearl [15] §3.2): forward sampling with rejection, the
//! counter-based random draws shared with the rollback engine, and the
//! 90%-confidence-interval stopping rule of §4.3.

use nscc_sim::SimTime;

use crate::cost::BayesCost;
use crate::network::{BeliefNetwork, NodeIdx, Value};

/// Deterministic counter-based uniform draw for `(seed, node, iter)`.
///
/// Rollback requires *reproducible* randomness: recomputing node `v` for
/// iteration `i` with corrected parent values must reuse the same
/// underlying draw, so the draw is a pure function of identity rather than
/// of generator state (SplitMix64 finalizer over the mixed key).
pub fn node_draw(seed: u64, node: NodeIdx, iter: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((node as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(iter.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 53-bit mantissa to [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// An inference problem: estimate `p(query | evidence)`.
#[derive(Debug, Clone)]
pub struct Query {
    /// The query node.
    pub node: NodeIdx,
    /// Observed evidence as `(node, value)` pairs.
    pub evidence: Vec<(NodeIdx, Value)>,
}

/// The §4.3 stopping rule: a 90% confidence interval of half-width ≤ 0.01
/// on every entry of the posterior.
#[derive(Debug, Clone, Copy)]
pub struct StopRule {
    /// Normal z-score of the confidence level (1.645 for 90%).
    pub z: f64,
    /// Required CI half-width.
    pub halfwidth: f64,
    /// Minimum accepted samples before the rule may fire.
    pub min_accepted: u64,
}

impl Default for StopRule {
    fn default() -> Self {
        StopRule {
            z: 1.645,
            halfwidth: 0.01,
            min_accepted: 100,
        }
    }
}

/// Running tally of accepted samples per query value.
#[derive(Debug, Clone)]
pub struct Tally {
    /// Accepted-sample counts per query value.
    pub counts: Vec<u64>,
    /// Total samples drawn (accepted + rejected).
    pub drawn: u64,
}

impl nscc_ckpt::Snapshot for Tally {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        self.counts.encode(enc);
        enc.put_u64(self.drawn);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        let counts = Vec::<u64>::decode(dec)?;
        let drawn = dec.u64()?;
        if counts.is_empty() {
            return Err(nscc_ckpt::CkptError::Malformed(
                "tally with zero query arity".into(),
            ));
        }
        Ok(Tally { counts, drawn })
    }
}

impl Tally {
    /// An empty tally for a query node of the given arity.
    pub fn new(arity: usize) -> Self {
        Tally {
            counts: vec![0; arity],
            drawn: 0,
        }
    }

    /// Total accepted samples.
    pub fn accepted(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Current posterior estimate (uniform if nothing accepted yet).
    pub fn estimate(&self) -> Vec<f64> {
        let n = self.accepted();
        if n == 0 {
            vec![1.0 / self.counts.len() as f64; self.counts.len()]
        } else {
            self.counts.iter().map(|&c| c as f64 / n as f64).collect()
        }
    }

    /// Largest CI half-width over the posterior entries under `rule`.
    pub fn max_halfwidth(&self, rule: &StopRule) -> f64 {
        let n = self.accepted();
        if n < rule.min_accepted.max(1) {
            return f64::INFINITY;
        }
        let nf = n as f64;
        self.counts
            .iter()
            .map(|&c| {
                let p = c as f64 / nf;
                rule.z * (p * (1.0 - p) / nf).sqrt()
            })
            .fold(0.0, f64::max)
    }

    /// Whether the stopping rule is satisfied.
    pub fn converged(&self, rule: &StopRule) -> bool {
        self.max_halfwidth(rule) <= rule.halfwidth
    }
}

/// Result of a sequential logic-sampling run.
#[derive(Debug, Clone)]
pub struct SeqResult {
    /// Posterior estimate.
    pub posterior: Vec<f64>,
    /// Samples drawn.
    pub samples: u64,
    /// Samples accepted (evidence matched).
    pub accepted: u64,
    /// Virtual CPU time of the run under the cost model.
    pub time: SimTime,
}

/// Draw one full forward sample of the network for iteration `iter`,
/// writing values into `out` (resized as needed).
pub fn forward_sample(net: &BeliefNetwork, seed: u64, iter: u64, out: &mut Vec<Value>) {
    out.clear();
    out.resize(net.len(), 0);
    for idx in 0..net.len() {
        let u = node_draw(seed, idx, iter);
        out[idx] = net.sample_node(idx, out, u);
    }
}

/// True when `sample` matches every evidence observation.
pub fn evidence_matches(sample: &[Value], evidence: &[(NodeIdx, Value)]) -> bool {
    evidence.iter().all(|&(n, v)| sample[n] == v)
}

/// The sequential logic-sampling program (the paper's uniprocessor
/// baseline, Table 2). Runs until the stop rule fires or `max_samples`.
/// The cost model's jitter/hiccup hazard applies (seeded by `seed`), so
/// the baseline runs on the same kind of node as the parallel versions.
pub fn sequential_inference(
    net: &BeliefNetwork,
    query: &Query,
    rule: &StopRule,
    cost: &BayesCost,
    seed: u64,
    max_samples: u64,
) -> SeqResult {
    use rand::SeedableRng;
    let mut cost_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC057_0001);
    let mut tally = Tally::new(net.node(query.node).arity);
    let mut time = SimTime::ZERO;
    let mut sample = Vec::new();
    // Convergence is only re-checked every `check` samples, as a real
    // implementation would (the CI math is not free).
    let check = 64;
    let mut iter = 0u64;
    while iter < max_samples {
        iter += 1;
        forward_sample(net, seed, iter, &mut sample);
        tally.drawn += 1;
        time += cost.iteration_cost_jittered(net.len() as u64, &mut cost_rng);
        if evidence_matches(&sample, &query.evidence) {
            tally.counts[sample[query.node] as usize] += 1;
        }
        if iter % check == 0 && tally.converged(rule) {
            break;
        }
    }
    SeqResult {
        posterior: tally.estimate(),
        samples: tally.drawn,
        accepted: tally.accepted(),
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_posterior;
    use crate::examples::{fig1, figure1};

    #[test]
    fn tally_snapshot_roundtrip_is_byte_identical() {
        let mut t = Tally::new(3);
        t.counts = vec![5, 0, 12];
        t.drawn = 40;
        let bytes = nscc_ckpt::to_bytes(&t);
        let back: Tally = nscc_ckpt::from_bytes(&bytes).unwrap();
        assert_eq!(back.counts, t.counts);
        assert_eq!(back.drawn, t.drawn);
        assert_eq!(nscc_ckpt::to_bytes(&back), bytes);
        // Zero-arity tallies are rejected rather than decoded into a
        // divide-by-zero time bomb in estimate().
        let empty = nscc_ckpt::to_bytes(&Tally {
            counts: Vec::new(),
            drawn: 0,
        });
        assert!(nscc_ckpt::from_bytes::<Tally>(&empty).is_err());
    }

    #[test]
    fn node_draw_is_deterministic_and_uniform_ish() {
        assert_eq!(node_draw(1, 2, 3), node_draw(1, 2, 3));
        assert_ne!(node_draw(1, 2, 3), node_draw(1, 2, 4));
        assert_ne!(node_draw(1, 2, 3), node_draw(1, 3, 3));
        let n = 50_000;
        let mean: f64 = (0..n).map(|i| node_draw(9, 0, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn sampler_matches_exact_posterior() {
        let net = figure1();
        let query = Query {
            node: fig1::A,
            evidence: vec![(fig1::D, 1)],
        };
        let exact = exact_posterior(&net, query.node, &query.evidence);
        let res = sequential_inference(
            &net,
            &query,
            &StopRule::default(),
            &BayesCost::deterministic(),
            7,
            2_000_000,
        );
        for (e, s) in exact.iter().zip(&res.posterior) {
            assert!(
                (e - s).abs() < 0.03,
                "sampled {:?} vs exact {:?}",
                res.posterior,
                exact
            );
        }
        assert!(res.accepted >= 100);
    }

    #[test]
    fn stop_rule_fires_before_the_cap() {
        let net = figure1();
        let query = Query {
            node: fig1::A,
            evidence: vec![],
        };
        let res = sequential_inference(
            &net,
            &query,
            &StopRule::default(),
            &BayesCost::deterministic(),
            1,
            10_000_000,
        );
        assert!(res.samples < 10_000_000, "CI rule should stop the run");
        // CI at the stop: halfwidth <= 0.01 needs roughly n >= 1.645^2 * p(1-p)/0.01^2.
        assert!(res.accepted >= 4000);
    }

    #[test]
    fn tally_ci_math() {
        let rule = StopRule::default();
        let mut t = Tally::new(2);
        assert!(!t.converged(&rule));
        // p = 0.5 with n accepted: halfwidth = 1.645 * 0.5 / sqrt(n).
        t.counts = vec![5000, 5000];
        let hw = t.max_halfwidth(&rule);
        assert!((hw - 1.645 * 0.5 / 10_000f64.sqrt()).abs() < 1e-12);
        assert!(t.converged(&rule));
    }

    #[test]
    fn rejection_respects_evidence() {
        let net = figure1();
        let mut s = Vec::new();
        forward_sample(&net, 3, 1, &mut s);
        assert_eq!(s.len(), 5);
        assert!(evidence_matches(&s, &[]));
        assert!(evidence_matches(&s, &[(0, s[0])]));
        assert!(!evidence_matches(&s, &[(0, 1 - s[0])]));
    }

    #[test]
    fn time_scales_with_samples_and_network_size() {
        let cost = BayesCost::deterministic();
        let net = figure1();
        let query = Query {
            node: fig1::A,
            evidence: vec![],
        };
        let short = sequential_inference(&net, &query, &StopRule::default(), &cost, 1, 100);
        let long = sequential_inference(&net, &query, &StopRule::default(), &cost, 1, 200);
        assert_eq!(short.samples, 100);
        assert_eq!(long.samples, 200);
        assert_eq!(long.time, short.time * 2);
    }
}
