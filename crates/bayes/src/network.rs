//! Bayesian belief networks: DAG structure plus conditional probability
//! tables (CPTs), as in Pearl [15].

use nscc_partition::Graph;

/// Index of a node (event variable) in a network.
pub type NodeIdx = usize;

/// A value a discrete node can take (0-based).
pub type Value = u8;

/// One node: its arity, parents, and CPT.
///
/// The CPT stores, for every combination of parent values (mixed-radix
/// index, first parent most significant), a probability distribution over
/// this node's values, flattened row-major: `cpt[combo * arity + value]`.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable name.
    pub name: String,
    /// Number of values this node takes.
    pub arity: usize,
    /// Parent node indices (must all be < this node's index in
    /// topological construction order).
    pub parents: Vec<NodeIdx>,
    /// Flattened CPT; length = (product of parent arities) * arity.
    pub cpt: Vec<f64>,
}

/// A Bayesian belief network. Nodes are stored in a topological order
/// (every parent index precedes its children), which the constructor
/// enforces.
#[derive(Debug, Clone)]
pub struct BeliefNetwork {
    nodes: Vec<Node>,
}

impl BeliefNetwork {
    /// Build a network from `nodes`; panics unless parents precede
    /// children and every CPT row is a probability distribution.
    pub fn new(nodes: Vec<Node>) -> Self {
        for (i, node) in nodes.iter().enumerate() {
            assert!(
                node.arity >= 2,
                "node `{}` needs at least 2 values",
                node.name
            );
            for &p in &node.parents {
                assert!(
                    p < i,
                    "node `{}` has parent index {p} >= its own index {i} \
                     (nodes must be listed in topological order)",
                    node.name
                );
            }
            let combos: usize = node.parents.iter().map(|&p| nodes[p].arity).product();
            assert_eq!(
                node.cpt.len(),
                combos * node.arity,
                "node `{}`: CPT length {} != {} combos * {} values",
                node.name,
                node.cpt.len(),
                combos,
                node.arity
            );
            for c in 0..combos {
                let row = &node.cpt[c * node.arity..(c + 1) * node.arity];
                let sum: f64 = row.iter().sum();
                assert!(
                    (sum - 1.0).abs() < 1e-9 && row.iter().all(|&p| (0.0..=1.0).contains(&p)),
                    "node `{}`: CPT row {c} is not a distribution (sum {sum})",
                    node.name
                );
            }
        }
        BeliefNetwork { nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `idx`.
    pub fn node(&self, idx: NodeIdx) -> &Node {
        &self.nodes[idx]
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.parents.len()).sum()
    }

    /// Mean edges per node (the Table 2 statistic).
    pub fn edges_per_node(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            self.edge_count() as f64 / self.nodes.len() as f64
        }
    }

    /// Maximum node arity (Table 2 "values per node").
    pub fn max_arity(&self) -> usize {
        self.nodes.iter().map(|n| n.arity).max().unwrap_or(0)
    }

    /// Children of each node (inverse of the parent lists).
    pub fn children(&self) -> Vec<Vec<NodeIdx>> {
        let mut ch = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &p in &n.parents {
                ch[p].push(i);
            }
        }
        ch
    }

    /// The CPT row (distribution over `idx`'s values) selected by the
    /// given full assignment of values to all nodes.
    pub fn cpt_row<'a>(&'a self, idx: NodeIdx, assignment: &[Value]) -> &'a [f64] {
        let node = &self.nodes[idx];
        let mut combo = 0usize;
        for &p in &node.parents {
            combo = combo * self.nodes[p].arity + assignment[p] as usize;
        }
        &node.cpt[combo * node.arity..(combo + 1) * node.arity]
    }

    /// Sample a value for `idx` given `assignment` (parents must already
    /// be assigned) using the uniform draw `u ∈ [0,1)`.
    pub fn sample_node(&self, idx: NodeIdx, assignment: &[Value], u: f64) -> Value {
        let row = self.cpt_row(idx, assignment);
        let mut acc = 0.0;
        for (v, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                return v as Value;
            }
        }
        (row.len() - 1) as Value
    }

    /// The undirected skeleton (for graph partitioning).
    pub fn skeleton(&self) -> Graph {
        let edges = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(i, n)| n.parents.iter().map(move |&p| (p, i)));
        Graph::from_edges(self.nodes.len(), edges)
    }

    /// Per-node *default values* for the asynchronous implementation: the
    /// a-priori most likely value assuming every parent takes its own
    /// default (computed in topological order), as §3.2 describes for
    /// Figure 1's node A.
    pub fn default_values(&self) -> Vec<Value> {
        let mut defaults: Vec<Value> = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            let row = self.cpt_row(i, &defaults_padded(&defaults, self.nodes.len()));
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(v, _)| v as Value)
                .unwrap_or(0);
            defaults.push(best);
        }
        defaults
    }
}

/// Helper: pad a prefix assignment out to `n` entries (CPT lookup only
/// reads parent positions, which are all within the prefix).
fn defaults_padded(prefix: &[Value], n: usize) -> Vec<Value> {
    let mut v = prefix.to_vec();
    v.resize(n, 0);
    v
}

/// Convenience constructor for a binary root node with `p_true`.
pub fn binary_root(name: &str, p_true: f64) -> Node {
    Node {
        name: name.to_string(),
        arity: 2,
        parents: Vec::new(),
        // Value 0 = false, 1 = true.
        cpt: vec![1.0 - p_true, p_true],
    }
}

/// Convenience constructor for a binary node whose CPT lists
/// `p(true | parent combo)` for each mixed-radix parent combination.
pub fn binary_node(name: &str, parents: Vec<NodeIdx>, p_true_rows: &[f64]) -> Node {
    let mut cpt = Vec::with_capacity(p_true_rows.len() * 2);
    for &p in p_true_rows {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        cpt.push(1.0 - p);
        cpt.push(p);
    }
    Node {
        name: name.to_string(),
        arity: 2,
        parents,
        cpt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain2() -> BeliefNetwork {
        BeliefNetwork::new(vec![
            binary_root("a", 0.3),
            binary_node("b", vec![0], &[0.9, 0.1]), // p(b=T | a=F)=0.9, p(b=T | a=T)=0.1
        ])
    }

    #[test]
    fn construction_and_stats() {
        let net = chain2();
        assert_eq!(net.len(), 2);
        assert_eq!(net.edge_count(), 1);
        assert_eq!(net.max_arity(), 2);
        assert!((net.edges_per_node() - 0.5).abs() < 1e-12);
        assert_eq!(net.children()[0], vec![1]);
    }

    #[test]
    fn cpt_row_indexing() {
        let net = chain2();
        let close = |row: &[f64], want: [f64; 2]| {
            assert!(
                row.iter().zip(want).all(|(a, b)| (a - b).abs() < 1e-12),
                "{row:?} vs {want:?}"
            );
        };
        close(net.cpt_row(1, &[0, 0]), [0.1, 0.9]);
        close(net.cpt_row(1, &[1, 0]), [0.9, 0.1]);
    }

    #[test]
    fn sample_node_inverse_cdf() {
        let net = chain2();
        // Root: p(F)=0.7. u=0.69 -> F, u=0.71 -> T.
        assert_eq!(net.sample_node(0, &[0, 0], 0.69), 0);
        assert_eq!(net.sample_node(0, &[0, 0], 0.71), 1);
        // Boundary u close to 1 returns the last value.
        assert_eq!(net.sample_node(0, &[0, 0], 0.999999), 1);
    }

    #[test]
    fn default_values_follow_the_priors() {
        // Figure 1's rule: p(A=true)=0.2 -> default false.
        let net = BeliefNetwork::new(vec![
            binary_root("A", 0.2),
            binary_node("B", vec![0], &[0.2, 0.8]),
        ]);
        let d = net.default_values();
        assert_eq!(d[0], 0, "A defaults to false");
        // Given A's default (false), p(B=T|A=F)=0.2 -> B defaults false.
        assert_eq!(d[1], 0);
    }

    #[test]
    fn skeleton_matches_edges() {
        let net = chain2();
        let g = net.skeleton();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    #[should_panic(expected = "not a distribution")]
    fn bad_cpt_rejected() {
        BeliefNetwork::new(vec![Node {
            name: "x".into(),
            arity: 2,
            parents: vec![],
            cpt: vec![0.5, 0.6],
        }]);
    }

    #[test]
    #[should_panic(expected = "topological")]
    fn forward_parent_rejected() {
        BeliefNetwork::new(vec![
            Node {
                name: "x".into(),
                arity: 2,
                parents: vec![1],
                cpt: vec![0.5, 0.5, 0.5, 0.5],
            },
            binary_root("y", 0.5),
        ]);
    }

    #[test]
    fn multi_valued_cpt_row() {
        // A 3-valued root and a 2-valued child conditioned on it.
        let net = BeliefNetwork::new(vec![
            Node {
                name: "w".into(),
                arity: 3,
                parents: vec![],
                cpt: vec![0.2, 0.3, 0.5],
            },
            Node {
                name: "c".into(),
                arity: 2,
                parents: vec![0],
                cpt: vec![0.9, 0.1, 0.5, 0.5, 0.1, 0.9],
            },
        ]);
        assert_eq!(net.cpt_row(1, &[2, 0]), &[0.1, 0.9]);
        assert_eq!(net.sample_node(0, &[0, 0], 0.45), 1);
    }
}
