//! Gibbs sampling — the third classic approximate-inference method (after
//! logic sampling and likelihood weighting), provided as a library
//! extension and cross-check. Evidence nodes are clamped; every other
//! node is repeatedly resampled from its full conditional, which for a
//! belief network is determined by its Markov blanket (parents, children,
//! children's parents).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nscc_sim::SimTime;

use crate::cost::BayesCost;
use crate::network::{BeliefNetwork, NodeIdx, Value};
use crate::sampling::{Query, StopRule, Tally};

/// Result of a Gibbs-sampling run.
#[derive(Debug, Clone)]
pub struct GibbsResult {
    /// Posterior estimate for the query node.
    pub posterior: Vec<f64>,
    /// Sweeps performed (each sweep resamples every non-evidence node).
    pub sweeps: u64,
    /// Virtual CPU time under the cost model.
    pub time: SimTime,
}

/// The unnormalized full conditional of `idx` given the rest of
/// `assignment`: `p(x_idx | markov blanket) ∝ p(x_idx | parents) × Π_c
/// p(x_c | parents(c))` over children `c`.
fn full_conditional(
    net: &BeliefNetwork,
    children: &[Vec<NodeIdx>],
    idx: NodeIdx,
    assignment: &mut [Value],
) -> Vec<f64> {
    let arity = net.node(idx).arity;
    let mut weights = Vec::with_capacity(arity);
    let saved = assignment[idx];
    for v in 0..arity {
        assignment[idx] = v as Value;
        let mut w = net.cpt_row(idx, assignment)[v];
        for &c in &children[idx] {
            w *= net.cpt_row(c, assignment)[assignment[c] as usize];
        }
        weights.push(w);
    }
    assignment[idx] = saved;
    weights
}

/// Run Gibbs sampling until the CI stopping rule fires on the query
/// posterior (counting one tally entry per sweep after burn-in) or
/// `max_sweeps` elapse.
pub fn gibbs_inference(
    net: &BeliefNetwork,
    query: &Query,
    rule: &StopRule,
    cost: &BayesCost,
    seed: u64,
    max_sweeps: u64,
) -> GibbsResult {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x61BB5);
    let mut cost_rng = StdRng::seed_from_u64(seed ^ 0xC057_0003);
    let children = net.children();
    let n = net.len();

    // Initial state: forward sample, then clamp evidence.
    let mut state: Vec<Value> = vec![0; n];
    for idx in 0..n {
        let u: f64 = rng.gen();
        state[idx] = net.sample_node(idx, &state, u);
    }
    for &(e, v) in &query.evidence {
        state[e] = v;
    }
    let evidence_mask: Vec<bool> = {
        let mut m = vec![false; n];
        for &(e, _) in &query.evidence {
            m[e] = true;
        }
        m
    };

    let burn_in = (max_sweeps / 20).clamp(50, 2000);
    let mut tally = Tally::new(net.node(query.node).arity);
    let mut time = SimTime::ZERO;
    let check = 64;
    let mut sweep = 0u64;
    while sweep < max_sweeps {
        sweep += 1;
        for idx in 0..n {
            if evidence_mask[idx] {
                continue;
            }
            let weights = full_conditional(net, &children, idx, &mut state);
            let total: f64 = weights.iter().sum();
            let mut t = rng.gen::<f64>() * total;
            let mut chosen = weights.len() - 1;
            for (v, &w) in weights.iter().enumerate() {
                t -= w;
                if t <= 0.0 {
                    chosen = v;
                    break;
                }
            }
            state[idx] = chosen as Value;
        }
        // A Gibbs sweep touches each node's Markov blanket: charge ~2x a
        // forward pass.
        time += cost.iteration_cost_jittered(2 * n as u64, &mut cost_rng);
        if sweep > burn_in {
            tally.drawn += 1;
            tally.counts[state[query.node] as usize] += 1;
            if sweep % check == 0 && tally.converged(rule) {
                break;
            }
        }
    }
    GibbsResult {
        posterior: tally.estimate(),
        sweeps: sweep,
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_posterior;
    use crate::examples::{fig1, figure1};

    #[test]
    fn matches_exact_posterior_on_figure1() {
        let net = figure1();
        let query = Query {
            node: fig1::A,
            evidence: vec![(fig1::D, 1)],
        };
        let exact = exact_posterior(&net, query.node, &query.evidence);
        let res = gibbs_inference(
            &net,
            &query,
            &StopRule::default(),
            &BayesCost::deterministic(),
            11,
            4_000_000,
        );
        // Gibbs samples are autocorrelated, so the nominal CI understates
        // the error; allow a wider band than the independent samplers.
        for (e, p) in exact.iter().zip(&res.posterior) {
            assert!(
                (e - p).abs() < 0.05,
                "gibbs {:?} vs exact {exact:?}",
                res.posterior
            );
        }
    }

    #[test]
    fn evidence_stays_clamped() {
        let net = figure1();
        let query = Query {
            node: fig1::B,
            evidence: vec![(fig1::A, 1), (fig1::E, 0)],
        };
        // Posterior must be consistent with p(B | A=1) reasoning: with A
        // true, B is likely true.
        let exact = exact_posterior(&net, query.node, &query.evidence);
        let res = gibbs_inference(
            &net,
            &query,
            &StopRule::default(),
            &BayesCost::deterministic(),
            5,
            2_000_000,
        );
        assert!((exact[1] - res.posterior[1]).abs() < 0.05);
        assert!(res.posterior[1] > 0.5);
    }

    #[test]
    fn full_conditional_normalizes_to_cpt_for_leaf_nodes() {
        let net = figure1();
        let children = net.children();
        // E is a leaf: its full conditional is exactly p(E | C).
        let mut asg = vec![0u8; net.len()];
        asg[fig1::C] = 1;
        let w = full_conditional(&net, &children, fig1::E, &mut asg);
        let total: f64 = w.iter().sum();
        let norm: Vec<f64> = w.iter().map(|x| x / total).collect();
        let row = net.cpt_row(fig1::E, &asg);
        for (a, b) in norm.iter().zip(row) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let net = figure1();
        let query = Query {
            node: fig1::A,
            evidence: vec![],
        };
        let r = |s| {
            gibbs_inference(
                &net,
                &query,
                &StopRule::default(),
                &BayesCost::deterministic(),
                s,
                50_000,
            )
        };
        let (a, b) = (r(3), r(3));
        assert_eq!(a.posterior, b.posterior);
        assert_eq!(a.sweeps, b.sweeps);
    }
}
