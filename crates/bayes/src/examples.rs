//! The example medical-diagnosis belief network of Figure 1.
//!
//! The paper shows a five-node network A→{B,C}, {B,C}→D, C→E with
//! `p(A=true) = 0.20` and `p(D=true | B=true, C=true) = 0.80` given
//! explicitly; the remaining entries are not printed, so we fill them with
//! conventional diagnosis-flavoured values (documented here, asserted in
//! tests, and irrelevant to the experiments, which use Table 2's
//! networks).

use crate::network::{binary_node, binary_root, BeliefNetwork};

/// Node indices of the Figure 1 network, in topological order.
pub mod fig1 {
    /// A: the root cause (e.g. "metastatic cancer").
    pub const A: usize = 0;
    /// B: first consequence of A.
    pub const B: usize = 1;
    /// C: second consequence of A.
    pub const C: usize = 2;
    /// D: joint consequence of B and C.
    pub const D: usize = 3;
    /// E: consequence of C alone.
    pub const E: usize = 4;
}

/// Build the Figure 1 network.
///
/// CPT conventions (value 1 = *true*):
/// * `p(A) = 0.20` (from the paper),
/// * `p(B | A) = 0.80`, `p(B | ¬A) = 0.20`,
/// * `p(C | A) = 0.20`, `p(C | ¬A) = 0.05`,
/// * `p(D | B, C) = 0.80` (from the paper), `p(D | B, ¬C) = 0.80`,
///   `p(D | ¬B, C) = 0.80`, `p(D | ¬B, ¬C) = 0.05`,
/// * `p(E | C) = 0.80`, `p(E | ¬C) = 0.60`.
pub fn figure1() -> BeliefNetwork {
    BeliefNetwork::new(vec![
        binary_root("A", 0.20),
        binary_node("B", vec![fig1::A], &[0.20, 0.80]),
        binary_node("C", vec![fig1::A], &[0.05, 0.20]),
        // Parent combos in mixed radix (B most significant):
        // (B=F,C=F), (B=F,C=T), (B=T,C=F), (B=T,C=T)
        binary_node("D", vec![fig1::B, fig1::C], &[0.05, 0.80, 0.80, 0.80]),
        binary_node("E", vec![fig1::C], &[0.60, 0.80]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_posterior;

    #[test]
    fn structure_matches_figure1() {
        let net = figure1();
        assert_eq!(net.len(), 5);
        assert_eq!(net.node(fig1::D).parents, vec![fig1::B, fig1::C]);
        assert_eq!(net.node(fig1::E).parents, vec![fig1::C]);
        assert_eq!(net.edge_count(), 5);
    }

    #[test]
    fn paper_probabilities_are_encoded() {
        let net = figure1();
        // p(A=true) = 0.20
        assert!((net.cpt_row(fig1::A, &[0; 5])[1] - 0.20).abs() < 1e-12);
        // p(D=true | B=true, C=true) = 0.80
        let mut a = [0u8; 5];
        a[fig1::B] = 1;
        a[fig1::C] = 1;
        assert!((net.cpt_row(fig1::D, &a)[1] - 0.80).abs() < 1e-12);
    }

    #[test]
    fn default_value_of_a_is_false() {
        // §3.2: "since p(A=true)=0.20 ... false is used as the default".
        let net = figure1();
        assert_eq!(net.default_values()[fig1::A], 0);
    }

    #[test]
    fn diagnosis_reasoning_is_sensible() {
        // Observing the symptom D should raise belief in the cause A.
        let net = figure1();
        let prior = exact_posterior(&net, fig1::A, &[]);
        let post = exact_posterior(&net, fig1::A, &[(fig1::D, 1)]);
        assert!(post[1] > prior[1], "evidence D=true must raise p(A=true)");
    }
}
