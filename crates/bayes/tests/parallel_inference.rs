//! Integration tests of parallel logic sampling over the DSM.

use std::sync::Arc;

use nscc_bayes::{
    exact_posterior, figure1, run_parallel_inference, sequential_inference, BayesCost,
    ParallelBayesConfig, Query, StopRule, Table2Net,
};
use nscc_dsm::Coherence;
use nscc_msg::MsgConfig;
use nscc_net::{EthernetBus, IdealMedium, Network};
use nscc_sim::SimTime;

fn fig1_query() -> Query {
    Query {
        node: nscc_bayes::fig1::A,
        evidence: vec![(nscc_bayes::fig1::D, 1)],
    }
}

fn quick_cfg(mode: Coherence) -> ParallelBayesConfig {
    ParallelBayesConfig {
        stop: StopRule {
            halfwidth: 0.02,
            ..StopRule::default()
        },
        cost: BayesCost::deterministic(),
        block: 4,
        max_iterations: 20_000,
        ..ParallelBayesConfig::new(mode)
    }
}

fn ideal() -> Network {
    Network::new(IdealMedium::new(SimTime::from_micros(300)))
}

#[test]
fn single_partition_matches_sequential_exactly() {
    let net = Arc::new(figure1());
    let cfg = quick_cfg(Coherence::FullyAsync);
    let res = run_parallel_inference(
        Arc::clone(&net),
        fig1_query(),
        1,
        cfg.clone(),
        ideal(),
        MsgConfig::default(),
        1,
    )
    .unwrap();
    // Sequential over the same number of samples with the same seed.
    let seq = sequential_inference(
        &net,
        &fig1_query(),
        &StopRule {
            min_accepted: u64::MAX, // never stop early
            ..StopRule::default()
        },
        &BayesCost::deterministic(),
        cfg.sample_seed,
        res.drawn,
    );
    assert_eq!(res.drawn, seq.samples);
    assert_eq!(res.accepted, seq.accepted, "identical draws must agree");
    assert_eq!(res.posterior, seq.posterior);
}

#[test]
fn sync_two_partitions_match_sequential_exactly() {
    let net = Arc::new(figure1());
    let cfg = quick_cfg(Coherence::Synchronous);
    let res = run_parallel_inference(
        Arc::clone(&net),
        fig1_query(),
        2,
        cfg.clone(),
        ideal(),
        MsgConfig::default(),
        3,
    )
    .unwrap();
    assert!(res.converged);
    let seq = sequential_inference(
        &net,
        &fig1_query(),
        &StopRule {
            min_accepted: u64::MAX,
            ..StopRule::default()
        },
        &BayesCost::deterministic(),
        cfg.sample_seed,
        res.drawn,
    );
    assert_eq!(
        res.accepted, seq.accepted,
        "synchronous sampling uses exact values: tallies must agree"
    );
    assert_eq!(res.posterior, seq.posterior);
    // No speculation in sync mode.
    let rollbacks: u64 = res.per_part.iter().map(|p| p.rollbacks).sum();
    assert_eq!(rollbacks, 0);
}

#[test]
fn controlled_modes_converge_near_the_exact_posterior() {
    let net = Arc::new(figure1());
    let exact = exact_posterior(&net, fig1_query().node, &fig1_query().evidence);
    for mode in [
        Coherence::Synchronous,
        Coherence::PartialAsync { age: 0 },
        Coherence::PartialAsync { age: 10 },
    ] {
        let res = run_parallel_inference(
            Arc::clone(&net),
            fig1_query(),
            2,
            quick_cfg(mode),
            ideal(),
            MsgConfig::default(),
            7,
        )
        .unwrap();
        assert!(res.converged, "{mode} failed to converge");
        for (e, p) in exact.iter().zip(&res.posterior) {
            assert!(
                (e - p).abs() < 0.06,
                "{mode}: posterior {:?} too far from exact {:?}",
                res.posterior,
                exact
            );
        }
    }
}

#[test]
fn uncontrolled_async_strays_and_starves_its_tally() {
    // Figure 1 splits into unequal partitions; with nothing to throttle
    // it, the lighter one races ahead without bound, its speculative
    // blocks fall off the rollback window unconfirmed and are discarded —
    // so the tally starves and the run cannot converge. This is the §1
    // runaway pathology Global_Read exists to prevent (the ages in
    // `controlled_modes_converge_near_the_exact_posterior` all converge
    // on the identical setup).
    let net = Arc::new(figure1());
    let res = run_parallel_inference(
        Arc::clone(&net),
        fig1_query(),
        2,
        ParallelBayesConfig {
            max_iterations: 8_000,
            ..quick_cfg(Coherence::FullyAsync)
        },
        ideal(),
        MsgConfig::default(),
        7,
    )
    .unwrap();
    assert!(!res.converged, "unthrottled async should starve here");
    let discarded: u64 = res.per_part.iter().map(|p| p.discarded).sum();
    assert!(discarded > 0, "the waste must be visible in the stats");
}

#[test]
fn partial_async_age_bound_prevents_window_overflow() {
    // Severe load skew (frequent long stalls) lets a fully asynchronous
    // partition stray far beyond the rollback window: speculative samples
    // freeze unconfirmed and must be *discarded* — wasted work. The
    // Global_Read age bound keeps runahead within the window, so nothing
    // is ever discarded.
    let net = Arc::new(Table2Net::Hailfinder.build());
    let query = Query {
        node: net.len() - 1,
        evidence: vec![],
    };
    let run = |mode| {
        let cfg = ParallelBayesConfig {
            stop: StopRule {
                halfwidth: 0.03,
                ..StopRule::default()
            },
            cost: BayesCost {
                hiccup_rate_per_sec: 10.0,
                hiccup_stall: nscc_sim::SimTime::from_millis(600),
                ..BayesCost::default()
            },
            block: 4,
            max_iterations: 3000,
            ..ParallelBayesConfig::new(mode)
        };
        run_parallel_inference(
            Arc::clone(&net),
            query.clone(),
            2,
            cfg,
            Network::new(EthernetBus::ten_mbps(5)),
            MsgConfig::default(),
            11,
        )
        .unwrap()
    };
    let wild = run(Coherence::FullyAsync);
    let tamed = run(Coherence::PartialAsync { age: 2 });
    let discarded = |r: &nscc_bayes::ParallelBayesResult| -> u64 {
        r.per_part.iter().map(|p| p.discarded).sum()
    };
    assert!(
        discarded(&wild) > 0,
        "uncontrolled speculation must overflow the rollback window"
    );
    assert_eq!(
        discarded(&tamed),
        0,
        "the age bound must keep every sample within the window"
    );
}

#[test]
fn rollbacks_occur_and_correct_the_estimate_under_async() {
    let net = Arc::new(Table2Net::A.build());
    let query = Query {
        node: net.len() - 1,
        evidence: vec![],
    };
    let cfg = ParallelBayesConfig {
        stop: StopRule {
            halfwidth: 0.04,
            ..StopRule::default()
        },
        cost: BayesCost::default(),
        block: 4,
        max_iterations: 5_000,
        ..ParallelBayesConfig::new(Coherence::FullyAsync)
    };
    let res = run_parallel_inference(
        Arc::clone(&net),
        query.clone(),
        2,
        cfg.clone(),
        Network::new(EthernetBus::ten_mbps(2)),
        MsgConfig::default(),
        13,
    )
    .unwrap();
    assert!(res.converged);
    let rollbacks: u64 = res.per_part.iter().map(|p| p.rollbacks).sum();
    assert!(
        rollbacks > 0,
        "cross-partition speculation on network A must trigger rollbacks"
    );
    // 54 binary nodes are far beyond exact enumeration; the reference is
    // a long sequential sampling run with the same counter-based draws.
    let reference = sequential_inference(
        &net,
        &query,
        &StopRule {
            min_accepted: u64::MAX,
            ..StopRule::default()
        },
        &BayesCost::deterministic(),
        cfg.sample_seed,
        30_000,
    );
    for (e, p) in reference.posterior.iter().zip(&res.posterior) {
        assert!(
            (e - p).abs() < 0.05,
            "posterior {:?} vs reference {:?}",
            res.posterior,
            reference.posterior
        );
    }
}

#[test]
fn determinism_per_seed() {
    let net = Arc::new(figure1());
    let run = || {
        run_parallel_inference(
            Arc::clone(&net),
            fig1_query(),
            2,
            quick_cfg(Coherence::PartialAsync { age: 3 }),
            ideal(),
            MsgConfig::default(),
            21,
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.posterior, b.posterior);
    assert_eq!(a.completion, b.completion);
    assert_eq!(a.drawn, b.drawn);
}
