//! Property-based tests of the Bayes building blocks.

use proptest::prelude::*;
use std::sync::Arc;

use nscc_bayes::{
    evidence_matches, exact_posterior, figure1, forward_sample, node_draw, Plan, Query,
    RandomNetConfig, Tally, TABLE2,
};

proptest! {
    /// Counter-based draws are valid uniforms and a pure function of
    /// their identity.
    #[test]
    fn node_draw_is_pure_and_in_unit_interval(seed in any::<u64>(), node in 0usize..64, iter in 0u64..1_000_000) {
        let u = node_draw(seed, node, iter);
        prop_assert!((0.0..1.0).contains(&u));
        prop_assert_eq!(u, node_draw(seed, node, iter));
    }

    /// Forward samples always produce in-range values for every node.
    #[test]
    fn forward_samples_are_in_range(seed in any::<u64>(), iter in 1u64..10_000) {
        let net = figure1();
        let mut s = Vec::new();
        forward_sample(&net, seed, iter, &mut s);
        prop_assert_eq!(s.len(), net.len());
        for (v, node) in s.iter().zip(net.nodes()) {
            prop_assert!((*v as usize) < node.arity);
        }
    }

    /// Evidence matching is consistent with its definition.
    #[test]
    fn evidence_match_definition(seed in any::<u64>()) {
        let net = figure1();
        let mut s = Vec::new();
        forward_sample(&net, seed, 1, &mut s);
        prop_assert!(evidence_matches(&s, &[]));
        for n in 0..net.len() {
            prop_assert!(evidence_matches(&s, &[(n, s[n])]));
            prop_assert!(!evidence_matches(&s, &[(n, 1 - s[n])]));
        }
    }

    /// Random-network generation respects its configuration for any seed.
    #[test]
    fn random_network_respects_config(seed in any::<u64>(), edges in 30usize..90) {
        let cfg = RandomNetConfig {
            nodes: 40,
            edges,
            arity: 2,
            max_parents: 8,
            seed,
        };
        let net = nscc_bayes::random_network(&cfg);
        prop_assert_eq!(net.len(), 40);
        prop_assert_eq!(net.edge_count(), edges);
        for node in net.nodes() {
            prop_assert!(node.parents.len() <= 8);
        }
    }

    /// Plans cover every node exactly once and route every remote parent,
    /// for every Table 2 network and partition count.
    #[test]
    fn plans_are_complete(parts in 1usize..5, net_idx in 0usize..4, seed in 0u64..100) {
        let net = TABLE2[net_idx].build();
        let query = Query { node: net.len() - 1, evidence: vec![(0, 0)] };
        let plan = Plan::new(&net, parts, seed, &query);
        let mut count = vec![0usize; net.len()];
        for part in 0..parts {
            for v in plan.owned(part) {
                count[v] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
        for v in 0..net.len() {
            for &u in &net.node(v).parents {
                if plan.assign[u] != plan.assign[v] {
                    prop_assert!(plan.value_index[plan.assign[v]].contains_key(&u));
                }
            }
        }
    }

    /// The tally's CI halfwidth shrinks monotonically in the sample count.
    #[test]
    fn tally_halfwidth_shrinks(p in 0.05f64..0.95) {
        let rule = nscc_bayes::StopRule::default();
        let mut prev = f64::INFINITY;
        for n in [200u64, 800, 3200, 12800] {
            let mut t = Tally::new(2);
            t.counts = vec![(p * n as f64) as u64, n - (p * n as f64) as u64];
            let hw = t.max_halfwidth(&rule);
            prop_assert!(hw <= prev);
            prev = hw;
        }
    }
}

/// Exact inference invariance: posteriors always normalize, on arbitrary
/// (small) evidence sets over the Figure 1 network.
proptest! {
    #[test]
    fn exact_posterior_normalizes(e1 in 0usize..5, v1 in 0u8..2) {
        let net = Arc::new(figure1());
        let query = 0;
        if e1 == query { return Ok(()); }
        let p = exact_posterior(&net, query, &[(e1, v1)]);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}
