//! # nscc — Non-Strict Cache Coherence
//!
//! A full reproduction of *"Non-Strict Cache Coherence: Exploiting
//! Data-Race Tolerance in Emerging Applications"* (Tambat & Vajapeyam,
//! ICPP 2000) as a Rust library: the `Global_Read` bounded-staleness read
//! primitive, the software DSM it lives in, a deterministic virtual-time
//! platform standing in for the paper's IBM SP2 + 10 Mbps Ethernet, and
//! the two application families the paper evaluates (island genetic
//! algorithms and parallel logic sampling over Bayesian belief networks).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`ckpt`] — deterministic, versioned snapshots: the `Snapshot`
//!   binary encoding, checksummed frames, and on-disk generation stores
//!   behind crash recovery and resumable sweeps (`NSCC_CKPT_DIR`).
//! * [`obs`] — the unified observability layer: structured events,
//!   staleness/block/delay histograms, warp timelines, span traces and
//!   Perfetto export.
//! * [`sim`] — deterministic discrete-event engine (virtual time,
//!   thread-backed processes, mailboxes).
//! * [`net`] — interconnect models (shared Ethernet bus, SP2 switch),
//!   background-load generation, the warp metric.
//! * [`faults`] — seeded fault injection: per-link loss/duplication/
//!   delay, degradation windows, node crashes, partitions, and the
//!   structured fault reports a cut-short run leaves behind.
//! * [`msg`] — PVM-like typed message passing with wire-size accounting
//!   and optional reliable delivery (seq/ack/retransmit).
//! * [`dsm`] — age-tagged shared locations and `Global_Read`
//!   ([`dsm::DsmNode::global_read`]): non-strict cache coherence.
//! * [`partition`] — balanced graph partitioning (METIS substitute).
//! * [`ga`] — the DeJong/Mühlenbein test bed and island-model GAs.
//! * [`bayes`] — belief networks, logic sampling, rollback machinery.
//! * [`core`] — experiment runners regenerating the paper's tables and
//!   figures.
//! * [`analyze`] — offline analysis of exported run reports and event
//!   dumps: `nscc inspect` / `nscc diff` / the `nscc gate` perf
//!   regression gate.
//! * [`audit`] — the online coherence auditor: invariant monitors driven
//!   from the event stream (staleness bound, write monotonicity,
//!   delivery dedup, barrier lockstep, rollback bound) and the black-box
//!   flight-recorder dump cut when a monitored run fails.
//!
//! ## Quick start
//!
//! ```
//! use nscc::dsm::{Coherence, Directory, DsmWorld};
//! use nscc::msg::MsgConfig;
//! use nscc::net::{EthernetBus, Network};
//! use nscc::sim::{SimBuilder, SimTime};
//!
//! // Two processes sharing one location over a simulated 10 Mbps
//! // Ethernet; the reader tolerates values up to 3 iterations stale.
//! let mut dir = Directory::new();
//! let loc = dir.add("x", 0, [1]);
//! let mut world: DsmWorld<u64> = DsmWorld::new(
//!     Network::new(EthernetBus::ten_mbps(7)),
//!     2,
//!     MsgConfig::default(),
//!     dir,
//! );
//! world.set_initial(loc, 0);
//!
//! let mut writer = world.node(0);
//! let mut reader = world.node(1);
//! let mut sim = SimBuilder::new(7);
//! sim.spawn("writer", move |ctx| {
//!     for iter in 1..=20 {
//!         ctx.advance(SimTime::from_millis(10)); // compute
//!         writer.write(ctx, loc, iter * 100, iter);
//!     }
//! });
//! sim.spawn("reader", move |ctx| {
//!     for iter in 1..=20 {
//!         ctx.advance(SimTime::from_millis(2)); // faster than the writer
//!         let (age, _value) = reader.global_read(ctx, loc, iter, 3);
//!         assert!(age + 3 >= iter, "Global_Read's staleness bound");
//!     }
//! });
//! sim.run().unwrap();
//! ```

pub use nscc_analyze as analyze;
pub use nscc_audit as audit;
pub use nscc_bayes as bayes;
pub use nscc_ckpt as ckpt;
pub use nscc_core as core;
pub use nscc_dsm as dsm;
pub use nscc_faults as faults;
pub use nscc_ga as ga;
pub use nscc_msg as msg;
pub use nscc_net as net;
pub use nscc_obs as obs;
pub use nscc_partition as partition;
pub use nscc_sim as sim;
